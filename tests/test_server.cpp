// Tests for the `bfpp serve` experiment server (api/server.h): the LRU
// ReportCache (incl. its save/load persistence), its key construction,
// the line-delimited JSON protocol, cached-response byte identity, the
// JSON request parser (common/json.h), the stdio / TCP transports and
// the concurrent-client accept loop.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "api/cli.h"
#include "api/server.h"
#include "common/error.h"
#include "common/json.h"
#include "common/serialize.h"
#include "common/socket.h"
#include "common/strings.h"

namespace bfpp::api {
namespace {

// ---- common/json.h ----

TEST(Json, ParsesScalarsArraysAndObjects) {
  const json::Value v = json::parse(
      R"({"s":"hi","i":8,"f":2.5,"t":true,"n":null,"a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("s")->as_string(), "hi");
  EXPECT_EQ(v.get("i")->as_int(), 8);
  EXPECT_DOUBLE_EQ(v.get("f")->as_number(), 2.5);
  EXPECT_TRUE(v.get("t")->as_bool());
  EXPECT_TRUE(v.get("n")->is_null());
  ASSERT_EQ(v.get("a")->size(), 3u);
  EXPECT_EQ(v.get("a")->items()[2].as_int(), 3);
  EXPECT_EQ(v.get("o")->get("k")->as_string(), "v");
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  const json::Value v =
      json::parse(R"({"e":"a\"b\\c\nd\u0041\u00e9\ud83d\ude00"})");
  EXPECT_EQ(v.get("e")->as_string(), "a\"b\\c\ndA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), ConfigError);
  EXPECT_THROW(json::parse("{"), ConfigError);
  EXPECT_THROW(json::parse("{\"a\":1,}"), ConfigError);
  EXPECT_THROW(json::parse("{\"a\":1} extra"), ConfigError);
  EXPECT_THROW(json::parse("{'a':1}"), ConfigError);
  EXPECT_THROW(json::parse("nul"), ConfigError);
  EXPECT_THROW(json::parse("\"unterminated"), ConfigError);
  EXPECT_THROW(json::parse("01x"), ConfigError);
  EXPECT_THROW(json::parse(std::string(100, '[')), ConfigError);  // depth cap
  EXPECT_THROW(json::parse("{\"a\":\"\\ud800\"}"), ConfigError);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const json::Value v = json::parse(R"({"s":"x","f":2.5})");
  EXPECT_THROW((void)v.get("s")->as_int("s"), ConfigError);
  EXPECT_THROW((void)v.get("f")->as_int("f"), ConfigError);  // not integral
  EXPECT_THROW((void)v.get("s")->as_bool("s"), ConfigError);
  EXPECT_THROW((void)v.get("f")->as_string("f"), ConfigError);
}

// ---- ReportCache ----

Report tagged_report(const std::string& tag) {
  Report r;
  r.scenario = tag;
  r.found = true;
  return r;
}

TEST(ReportCache, RoundTripsAndCounts) {
  ReportCache cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", tagged_report("a"));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scenario, "a");
  const ReportCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.capacity, 4u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ReportCache, EvictsLeastRecentlyUsedFirst) {
  ReportCache cache(2);
  cache.put("a", tagged_report("a"));
  cache.put("b", tagged_report("b"));
  EXPECT_TRUE(cache.get("a").has_value());   // promote a: LRU order b, a
  cache.put("c", tagged_report("c"));        // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ReportCache, PutRefreshesExistingKeysWithoutEvicting) {
  ReportCache cache(2);
  cache.put("a", tagged_report("a"));
  cache.put("b", tagged_report("b"));
  cache.put("a", tagged_report("a2"));  // refresh, promote a: LRU order b, a
  EXPECT_EQ(cache.stats().insertions, 2u);
  cache.put("c", tagged_report("c"));  // evicts b, not a
  EXPECT_EQ(cache.get("a")->scenario, "a2");
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(ReportCache, CapacityZeroDisablesCaching) {
  ReportCache cache(0);
  cache.put("a", tagged_report("a"));
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- Single-flight coalescing (ReportCache layer) ----

// Spins until `pred` holds (or ~timeout_ms passed); returns pred().
bool poll_until(const std::function<bool()>& pred, int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 2) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(ReportCache, SingleFlightLeaderComputesOnceFollowersCoalesce) {
  ReportCache cache(8);
  // First prober is appointed leader; the cell is now in flight.
  ASSERT_TRUE(cache.probe_or_lead("cell").leader);
  EXPECT_EQ(cache.stats().inflight, 1u);

  constexpr size_t kFollowers = 3;
  std::vector<std::optional<Report>> got(kFollowers);
  std::vector<std::thread> followers;
  for (size_t i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&cache, &got, i] {
      ReportCache::Probe probe = cache.probe_or_lead("cell");
      EXPECT_NE(probe.waiting, nullptr);
      if (probe.waiting != nullptr) got[i] = cache.wait(probe.waiting);
    });
  }
  // All followers are provably waiting before the leader publishes.
  ASSERT_TRUE(
      poll_until([&] { return cache.stats().coalesced == kFollowers; }));
  cache.publish("cell", tagged_report("computed"));
  for (std::thread& follower : followers) follower.join();
  for (const std::optional<Report>& report : got) {
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->scenario, "computed");
  }
  const ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // only the leader missed
  EXPECT_EQ(stats.coalesced, kFollowers);
  EXPECT_EQ(stats.insertions, 1u);  // the cell was computed exactly once
  EXPECT_EQ(stats.hits, 0u);        // followers are not counted as hits
  EXPECT_EQ(stats.inflight, 0u);    // the entry retired with the publish
  // After the flight lands, the cell is a plain LRU hit.
  EXPECT_EQ(cache.get("cell")->scenario, "computed");
}

TEST(ReportCache, AbandonedLeaderReleasesFollowerToRelead) {
  ReportCache cache(8);
  ASSERT_TRUE(cache.probe_or_lead("cell").leader);

  std::optional<Report> followed = tagged_report("sentinel");
  bool reled = false;
  std::thread follower([&] {
    ReportCache::Probe probe = cache.probe_or_lead("cell");
    EXPECT_NE(probe.waiting, nullptr);
    if (probe.waiting == nullptr) return;
    followed = cache.wait(probe.waiting);
    if (followed.has_value()) return;
    // The leader gave up: the follower re-probes, is appointed the new
    // leader, and computes the cell itself - no permanent wait.
    ReportCache::Probe again = cache.probe_or_lead("cell");
    reled = again.leader;
    if (reled) cache.publish("cell", tagged_report("recomputed"));
  });
  ASSERT_TRUE(poll_until([&] { return cache.stats().coalesced == 1u; }));
  cache.abandon("cell");
  follower.join();

  EXPECT_FALSE(followed.has_value());  // woken with "no result"
  EXPECT_TRUE(reled);
  EXPECT_EQ(cache.get("cell")->scenario, "recomputed");
  const ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);  // original leader + the re-lead
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(ReportCache, CoalescingServesFollowersEvenWithCachingDisabled) {
  // Followers are handed the result through the in-flight entry itself,
  // so single-flight works even at capacity 0 (nothing is ever stored).
  ReportCache cache(0);
  ASSERT_TRUE(cache.probe_or_lead("cell").leader);
  std::optional<Report> followed;
  std::thread follower([&] {
    ReportCache::Probe probe = cache.probe_or_lead("cell");
    EXPECT_NE(probe.waiting, nullptr);
    if (probe.waiting != nullptr) followed = cache.wait(probe.waiting);
  });
  ASSERT_TRUE(poll_until([&] { return cache.stats().coalesced == 1u; }));
  cache.publish("cell", tagged_report("once"));
  follower.join();
  ASSERT_TRUE(followed.has_value());
  EXPECT_EQ(followed->scenario, "once");
  const ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.coalesced, 1u);
}

TEST(ReportCache, AbandonWithManyFollowersMidWaitReleadsExactlyOnce) {
  // The abandon edge case at fan-out: several followers are provably
  // blocked inside wait() when the leader gives up. Every follower must
  // wake with nullopt, and the ensuing re-probe stampede must appoint
  // exactly one new leader - the rest coalesce onto the re-lead's
  // in-flight entry (or hit the cache if they probe after its publish).
  ReportCache cache(8);
  ASSERT_TRUE(cache.probe_or_lead("cell").leader);

  constexpr size_t kFollowers = 4;
  std::atomic<int> releads{0};
  std::atomic<int> woken_empty{0};
  std::vector<std::optional<Report>> got(kFollowers);
  std::vector<std::thread> followers;
  for (size_t i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&cache, &releads, &woken_empty, &got, i] {
      ReportCache::Probe probe = cache.probe_or_lead("cell");
      ASSERT_NE(probe.waiting, nullptr);
      std::optional<Report> result = cache.wait(probe.waiting);
      if (!result.has_value()) woken_empty.fetch_add(1);
      // Server retry loop: re-probe until the cell resolves, computing
      // it ourselves if appointed the post-abandon leader.
      while (!result.has_value()) {
        ReportCache::Probe again = cache.probe_or_lead("cell");
        if (again.leader) {
          releads.fetch_add(1);
          cache.publish("cell", tagged_report("recomputed"));
          result = tagged_report("recomputed");
        } else if (again.waiting != nullptr) {
          result = cache.wait(again.waiting);
        } else {
          result = again.report;
        }
      }
      got[i] = std::move(result);
    });
  }
  // All followers are blocked in wait() before the leader abandons.
  ASSERT_TRUE(
      poll_until([&] { return cache.stats().coalesced == kFollowers; }));
  cache.abandon("cell");
  for (std::thread& follower : followers) follower.join();

  EXPECT_EQ(woken_empty.load(), static_cast<int>(kFollowers));
  EXPECT_EQ(releads.load(), 1);  // exactly one follower re-led
  for (const std::optional<Report>& report : got) {
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->scenario, "recomputed");
  }
  const ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);  // abandoned leader + the one re-lead
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(cache.get("cell")->scenario, "recomputed");
}

TEST(ReportCache, SaveRacesSingleFlightAtCapacityZero) {
  // save() walks the LRU under the cache mutex while probe_or_lead /
  // publish / wait mutate the single-flight table on other threads. At
  // --cache-size 0 nothing is ever stored, so every round is a fresh
  // leader appointment racing the snapshot loop - the regression
  // surface for iterator invalidation or a snapshot taken mid-flight.
  // (TSan CI runs this test; locally it is a liveness + stats check.)
  ReportCache cache(0);
  const std::string path = testing::TempDir() + "/race_cache.jsonl";
  std::atomic<bool> stop{false};
  std::thread saver([&] {
    while (!stop.load()) EXPECT_TRUE(cache.save(path));
  });

  constexpr uint64_t kRounds = 100;
  for (uint64_t round = 0; round < kRounds; ++round) {
    const std::string key = "cell-" + std::to_string(round);
    ASSERT_TRUE(cache.probe_or_lead(key).leader);
    std::optional<Report> followed;
    std::thread follower([&cache, &followed, &key] {
      ReportCache::Probe probe = cache.probe_or_lead(key);
      ASSERT_NE(probe.waiting, nullptr);
      followed = cache.wait(probe.waiting);
    });
    // The follower is provably mid-wait before the leader publishes.
    ASSERT_TRUE(
        poll_until([&] { return cache.stats().coalesced == round + 1; }));
    cache.publish(key, tagged_report(key));
    follower.join();
    ASSERT_TRUE(followed.has_value());
    EXPECT_EQ(followed->scenario, key);
  }
  stop.store(true);
  saver.join();

  const ReportCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);     // capacity 0: nothing ever stored
  EXPECT_EQ(stats.insertions, 0u);  // publish() is a no-op insert
  EXPECT_EQ(stats.misses, kRounds);
  EXPECT_EQ(stats.coalesced, kRounds);
  EXPECT_EQ(stats.inflight, 0u);  // every flight retired
  // The concurrent snapshots were all of an empty cache, and the final
  // file is a loadable (empty) snapshot, not torn output.
  ReportCache reloaded(8);
  EXPECT_EQ(reloaded.load(path), 0u);
  std::remove(path.c_str());
}

// ---- Report wire form + cache persistence ----

// A Report with every field populated, including awkward doubles (no
// finite decimal expansion, tiny magnitudes) and the optional frugal
// block, so the wire round trip is exercised end to end.
Report full_report() {
  Report r;
  r.scenario = "cache/round,trip \"quoted\"";
  r.model = "52B";
  r.cluster = "DGX-1 V100 (InfiniBand)";
  r.method = "Breadth-first";
  r.n_gpus = 64;
  r.batch_size = 16;
  r.found = true;
  r.config.n_pp = 8;
  r.config.n_tp = 8;
  r.config.n_dp = 1;
  r.config.s_mb = 1;
  r.config.n_mb = 16;
  r.config.n_loop = 4;
  r.config.schedule = parallel::ScheduleKind::kBreadthFirst;
  r.config.sharding = parallel::DpSharding::kFull;
  r.config.overlap_dp = false;
  r.result.batch_time = 1.0 / 3.0;
  r.result.throughput_per_gpu = 3.6281234567891234e13;
  r.result.utilization = 0.2903225806451613;
  r.result.compute_idle_fraction = 1e-9;
  r.memory.state_bytes = 1.5e10;
  r.memory.buffer_bytes = 2.0 / 7.0;
  r.memory.activation_bytes = 3.25e8;
  r.memory.checkpoint_bytes = 0.0;
  r.memory.p2p_buffer_bytes = 1.25e6;
  r.memory_min = r.memory;
  r.memory_min.state_bytes = 2.5e8;
  r.evaluated = 97;
  r.infeasible = 31;
  Report::Frugal frugal;
  frugal.config = r.config;
  frugal.config.n_loop = 2;
  frugal.result = r.result;
  frugal.result.batch_time = 0.7071067811865476;
  frugal.memory_min = r.memory_min;
  r.frugal = frugal;
  return r;
}

Report negative_report() {
  Report r;
  r.scenario = "cache/negative";
  r.model = "52B";
  r.cluster = "DGX-1 V100 (InfiniBand)";
  r.batch_size = 64;
  r.n_gpus = 64;
  r.found = false;
  r.error = "[oom] 52B does not fit on one GPU";
  return r;
}

TEST(ReportWire, RoundTripsEveryFieldLosslessly) {
  for (const Report& original : {full_report(), negative_report()}) {
    const std::string wire = original.to_wire();
    EXPECT_EQ(wire.find('\n'), std::string::npos);  // one protocol line
    const Report copy = Report::from_wire(json::parse(wire));
    // Bit-exact doubles (the %.17g contract): every emitter must render
    // the reloaded Report byte-for-byte like the original.
    EXPECT_EQ(copy.to_wire(), wire);
    EXPECT_EQ(copy.to_json(), original.to_json());
    EXPECT_EQ(copy.to_csv_row(), original.to_csv_row());
    EXPECT_EQ(copy.config, original.config);
    EXPECT_EQ(copy.error, original.error);
    EXPECT_EQ(copy.frugal.has_value(), original.frugal.has_value());
  }
}

TEST(ReportWire, FromWireRejectsTruncatedValues) {
  EXPECT_THROW((void)Report::from_wire(json::parse("[1,2]")), ConfigError);
  EXPECT_THROW((void)Report::from_wire(json::parse("{\"scenario\":\"x\"}")),
               ConfigError);
  // A result array of the wrong arity is corruption, not a report.
  std::string wire = full_report().to_wire();
  const size_t pos = wire.find("\"result\":[");
  wire.replace(pos, std::string("\"result\":[").size(), "\"result\":[1,");
  EXPECT_THROW((void)Report::from_wire(json::parse(wire)), ConfigError);
}

TEST(ReportCache, SaveLoadRoundTripsEntriesRecencyOrderAndNegatives) {
  const std::string path =
      testing::TempDir() + "bfpp_cache_roundtrip.jsonl";
  std::remove(path.c_str());
  ReportCache cache(4);
  cache.put("b", full_report());
  cache.put("neg", negative_report());
  cache.put("a", tagged_report("a"));
  (void)cache.get("b");  // recency (MRU first): b, a, neg
  ASSERT_TRUE(cache.save(path));

  ReportCache loaded(3);
  EXPECT_EQ(loaded.load(path), 3u);
  const ReportCache::Stats stats = loaded.stats();
  EXPECT_EQ(stats.entries, 3u);
  // Loaded entries are not this process's traffic: counters stay zero.
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);

  // The negative (found=false) cell survived with its reason.
  const std::optional<Report> neg = loaded.get("neg");
  ASSERT_TRUE(neg.has_value());
  EXPECT_FALSE(neg->found);
  EXPECT_EQ(neg->error, "[oom] 52B does not fit on one GPU");
  // Recency order survived the round trip: "neg" was LRU at save time,
  // and get("neg") above promoted it, leaving "a" as LRU now.
  loaded.put("d", tagged_report("d"));  // beyond capacity: evicts LRU
  EXPECT_FALSE(loaded.get("a").has_value());
  EXPECT_TRUE(loaded.get("b").has_value());
  std::remove(path.c_str());
}

TEST(ReportCache, LoadToleratesMissingGarbageAndPartiallyCorruptFiles) {
  const std::string dir = testing::TempDir();
  ReportCache cache(8);
  // Missing file: a silent cold start.
  EXPECT_EQ(cache.load(dir + "bfpp_cache_does_not_exist.jsonl"), 0u);

  // Garbage and version-mismatched files are ignored wholesale.
  const std::string garbage = dir + "bfpp_cache_garbage.jsonl";
  ASSERT_TRUE(serialize::write_file_atomic(garbage, "not a cache\x01\xff\n"));
  EXPECT_EQ(cache.load(garbage), 0u);
  ASSERT_TRUE(serialize::write_file_atomic(
      garbage, "{\"bfpp_report_cache\":999,\"entries\":1}\n{\"key\":1}\n"));
  EXPECT_EQ(cache.load(garbage), 0u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // A corrupt entry line is skipped; intact neighbours still load.
  const std::string partial = dir + "bfpp_cache_partial.jsonl";
  ReportCache donor(4);
  donor.put("k1", tagged_report("k1"));
  donor.put("k2", full_report());
  ASSERT_TRUE(donor.save(partial));
  std::optional<std::string> content = serialize::read_file(partial);
  ASSERT_TRUE(content.has_value());
  std::vector<std::string> lines = serialize::split_lines(*content);
  ASSERT_EQ(lines.size(), 3u);
  lines.insert(lines.begin() + 2, "{\"key\":\"kx\",\"report\":{\"trunc");
  ASSERT_TRUE(serialize::write_file_atomic(
      partial, join(lines, "\n") + "\n"));
  ReportCache repaired(8);
  EXPECT_EQ(repaired.load(partial), 2u);
  EXPECT_TRUE(repaired.get("k1").has_value());
  EXPECT_TRUE(repaired.get("k2").has_value());
  EXPECT_FALSE(repaired.get("kx").has_value());
  std::remove(garbage.c_str());
  std::remove(partial.c_str());
}

// ---- cache_key ----

Scenario fig5a_scenario() {
  return ScenarioBuilder()
      .model("52b")
      .cluster("dgx1-v100-ib")
      .pp(8)
      .tp(8)
      .nmb(16)
      .schedule("bf")
      .loop(4)
      .build();
}

TEST(CacheKey, IdenticalCellsShareAKey) {
  EXPECT_EQ(cache_key(fig5a_scenario(), std::nullopt, {}),
            cache_key(fig5a_scenario(), std::nullopt, {}));
}

TEST(CacheKey, LabelAndThreadBudgetAreExcluded) {
  // The cosmetic name and the (result-invariant) thread budget must not
  // split the cache: a sweep cell can serve a later run request.
  Scenario relabelled = fig5a_scenario();
  relabelled.name = "some/sweep/label";
  RunOptions threads;
  threads.threads = 7;
  EXPECT_EQ(cache_key(fig5a_scenario(), std::nullopt, {}),
            cache_key(relabelled, std::nullopt, threads));
}

TEST(CacheKey, BackendsKernelsConfigsAndMethodsSplitTheKey) {
  const Scenario s = fig5a_scenario();
  const std::string base = cache_key(s, std::nullopt, {});

  RunOptions analytic;
  analytic.backend = Backend::kAnalytic;
  EXPECT_NE(base, cache_key(s, std::nullopt, analytic));

  RunOptions kernel;
  kernel.kernel = hw::KernelModel{};
  kernel.kernel->max_efficiency = 0.5;
  EXPECT_NE(base, cache_key(s, std::nullopt, kernel));
  RunOptions kernel2 = kernel;
  kernel2.kernel->max_efficiency = 0.51;
  EXPECT_NE(cache_key(s, std::nullopt, kernel),
            cache_key(s, std::nullopt, kernel2));

  Scenario other = ScenarioBuilder()
                       .model("52b")
                       .cluster("dgx1-v100-ib")
                       .pp(8)
                       .tp(8)
                       .nmb(32)  // different micro-batch count
                       .schedule("bf")
                       .loop(4)
                       .build();
  EXPECT_NE(base, cache_key(other, std::nullopt, {}));

  // Overlap capability flags are part of describe(), hence of the key.
  Scenario no_overlap = ScenarioBuilder()
                            .model("52b")
                            .cluster("dgx1-v100-ib")
                            .pp(8)
                            .tp(8)
                            .nmb(16)
                            .schedule("bf")
                            .loop(4)
                            .overlap(false, true)
                            .build();
  EXPECT_NE(base, cache_key(no_overlap, std::nullopt, {}));

  EXPECT_NE(base,
            cache_key(s, autotune::Method::kBreadthFirst, {}));
  EXPECT_NE(cache_key(s, autotune::Method::kBreadthFirst, {}),
            cache_key(s, autotune::Method::kDepthFirst, {}));

  // A resized cluster shares the preset display name but not the key.
  Scenario resized = ScenarioBuilder()
                         .model("52b")
                         .cluster("dgx1-v100-ib:16")
                         .pp(8)
                         .tp(8)
                         .nmb(16)
                         .schedule("bf")
                         .loop(4)
                         .build();
  EXPECT_NE(base, cache_key(resized, std::nullopt, {}));
}

// ---- Server protocol ----

constexpr const char* kFig5aRun =
    R"({"type":"run","model":"52b","cluster":"dgx1-v100-ib","pp":8,"tp":8,)"
    R"("nmb":16,"schedule":"bf","loop":4})";

TEST(Server, PingStatsAndShutdown) {
  Server server;
  EXPECT_EQ(server.handle(R"({"id":7,"type":"ping"})"),
            "{\"id\":7,\"ok\":true,\"type\":\"pong\"}\n");
  EXPECT_EQ(server.handle(R"({"id":"x","type":"ping"})"),
            "{\"id\":\"x\",\"ok\":true,\"type\":\"pong\"}\n");
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"requests\":3"), std::string::npos);
  EXPECT_NE(stats.find("\"hits\":0,\"misses\":0"), std::string::npos);
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_EQ(server.handle(R"({"type":"shutdown"})"),
            "{\"ok\":true,\"type\":\"shutdown\"}\n");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(Server, EchoesLargeIntegerIdsVerbatim) {
  // Correlation ids are commonly epoch-millisecond timestamps; they must
  // come back digit-for-digit, not through %g scientific notation.
  Server server;
  EXPECT_EQ(server.handle(R"({"id":1722300000000,"type":"ping"})"),
            "{\"id\":1722300000000,\"ok\":true,\"type\":\"pong\"}\n");
  EXPECT_EQ(server.handle(R"({"id":-3,"type":"ping"})"),
            "{\"id\":-3,\"ok\":true,\"type\":\"pong\"}\n");
  EXPECT_NE(server.handle(R"({"id":[1],"type":"ping"})")
                .find("\"ok\":false"),
            std::string::npos);
  // An overflowing literal parses to infinity; echoing it would emit
  // bare `inf` and corrupt the response line.
  const std::string inf_id = server.handle(R"({"id":1e400,"type":"ping"})");
  EXPECT_NE(inf_id.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(inf_id.find("inf"), std::string::npos);
}

TEST(Server, RunRequestsRejectASearchMethod) {
  // run simulates one exact configuration; a method field on it would
  // otherwise be silently dropped and mislead.
  Server server;
  const std::string response = server.handle(
      R"({"type":"run","preset":"fig5a-bf-b16","method":"df"})");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("search and sweep"), std::string::npos);
}

TEST(Server, BlankLinesAreKeepAliveNoOps) {
  Server server;
  EXPECT_EQ(server.handle(""), "");
  EXPECT_EQ(server.handle("   \t"), "");
  EXPECT_NE(server.handle(R"({"type":"stats"})").find("\"requests\":1"),
            std::string::npos);
}

TEST(Server, MalformedRequestsBecomeErrorLines) {
  Server server;
  EXPECT_NE(server.handle("not json").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(server.handle("[1,2]").find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(server.handle(R"({"no_type":1})").find("needs a"),
            std::string::npos);
  EXPECT_NE(server.handle(R"({"type":"frobnicate"})")
                .find("unknown request type"),
            std::string::npos);
  // Unknown fields are rejected (typo protection), echoing the id.
  const std::string bad_field =
      server.handle(R"({"id":3,"type":"run","pq":8})");
  EXPECT_EQ(bad_field.rfind("{\"id\":3,\"ok\":false", 0), 0u);
  EXPECT_NE(bad_field.find("unknown field"), std::string::npos);
  EXPECT_NE(bad_field.find("pq"), std::string::npos);
  // A structurally invalid *request* (contradictory flags) is a protocol
  // error; a valid request whose configuration the engine rejects is a
  // found=false row instead (see InfeasibleRunsAreReportRowsNot...).
  EXPECT_NE(server.handle(
                    R"({"type":"run","preset":"fig5a-bf-b16","pp":4})")
                .find("\"ok\":false"),
            std::string::npos);
  // Scenario fields make no sense on a stats request.
  EXPECT_NE(server.handle(R"({"type":"stats","pp":8})").find("\"ok\":false"),
            std::string::npos);
}

TEST(Server, RepeatedRunIsAByteIdenticalCacheHit) {
  Server server;
  const std::string first = server.handle(kFig5aRun);
  EXPECT_EQ(first.rfind("{\"ok\":true,\"type\":\"run\",\"report\":{", 0), 0u);
  EXPECT_NE(first.find("\"found\":true"), std::string::npos);
  EXPECT_EQ(first.find('\n'), first.size() - 1);  // one line
  const std::string second = server.handle(kFig5aRun);
  EXPECT_EQ(first, second);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1,\"misses\":1,\"insertions\":1"),
            std::string::npos);
}

TEST(Server, CacheKeysRespectBackendAndKernelAcrossRequests) {
  Server server;
  (void)server.handle(kFig5aRun);
  // Same cell on another backend: a miss, not a hit.
  const std::string analytic = std::string(kFig5aRun);
  (void)server.handle(analytic.substr(0, analytic.size() - 1) +
                      R"(,"backend":"analytic"})");
  // Same cell with a kernel override: a third miss.
  (void)server.handle(analytic.substr(0, analytic.size() - 1) +
                      R"(,"kernel":{"max_efficiency":0.5}})");
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":0,\"misses\":3,\"insertions\":3"),
            std::string::npos);
}

TEST(Server, InfeasibleRunsAreReportRowsNotProtocolErrors) {
  Server server;
  // 52B replicated on every GPU: out of memory, reported as a
  // found=false row with the reason, and cached like any other result.
  const std::string oom =
      R"({"type":"run","model":"52b","cluster":"dgx1-v100-ib","pp":1,)"
      R"("tp":1,"dp":64,"nmb":1,"schedule":"gpipe"})";
  const std::string first = server.handle(oom);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(first.find("\"found\":false"), std::string::npos);
  EXPECT_NE(first.find("[oom]"), std::string::npos);
  EXPECT_EQ(first, server.handle(oom));
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1,\"misses\":1"), std::string::npos);
}

TEST(Server, SweepStreamsRowsAndServesRepeatsFromTheCache) {
  Server server;
  const std::string sweep =
      R"({"id":1,"type":"sweep","model":"52b","cluster":"dgx1-v100-ib",)"
      R"("pp":[8],"tp":[8],"nmb":[16,32],"schedule":["bf"],"loop":[4]})";
  const std::string first = server.handle(sweep);
  // Framing: one header line announcing the payload, then one compact
  // JSON object per row.
  std::vector<std::string> lines;
  for (size_t pos = 0; pos < first.size();) {
    const size_t nl = first.find('\n', pos);
    lines.push_back(first.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"id\":1,\"ok\":true,\"type\":\"sweep\",\"rows\":2,"
            "\"lines\":2}");
  EXPECT_EQ(lines[1].rfind("{\"scenario\":", 0), 0u);
  EXPECT_NE(lines[1].find("nmb16"), std::string::npos);
  EXPECT_NE(lines[2].find("nmb32"), std::string::npos);

  const std::string second = server.handle(sweep);
  EXPECT_EQ(first, second);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":2,\"misses\":2"), std::string::npos);
}

TEST(Server, CompareRequestRunsTheNamedGridAndCaches) {
  Server server;
  const std::string req =
      R"({"id":1,"type":"compare","grid":"fig5-quick","backend":"analytic"})";
  const std::string first = server.handle(req);
  EXPECT_EQ(first.rfind("{\"id\":1,\"ok\":true,\"type\":\"compare\","
                        "\"rows\":12,",
                        0),
            0u);
  // One row per (batch, family) cell, labelled like the CLI table.
  EXPECT_NE(first.find("\"scenario\":\"6.6b/b64/bf\""), std::string::npos);
  EXPECT_NE(first.find("\"scenario\":\"6.6b/b128/2bp\""), std::string::npos);
  // A warm cache serves the identical bytes without recomputing.
  const std::string second = server.handle(req);
  EXPECT_EQ(first, second);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":12,\"misses\":12"), std::string::npos);

  // Unknown grids and stray scenario fields are protocol errors.
  EXPECT_NE(server.handle(R"({"type":"compare","grid":"fig7"})")
                .find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(server.handle(R"({"type":"compare","pp":8})")
                .find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(server.handle(R"({"type":"run","grid":"fig5"})")
                .find("\"ok\":false"),
            std::string::npos);
}

TEST(Server, RunRequestHitsACellComputedByASweep) {
  // The cache key excludes the label, so the same physical cell is
  // shared between a sweep and a later run request (relabelled).
  Server server;
  (void)server.handle(
      R"({"type":"sweep","model":"52b","cluster":"dgx1-v100-ib",)"
      R"("pp":[8],"tp":[8],"nmb":[16],"schedule":["bf"],"loop":[4]})");
  const std::string run = server.handle(kFig5aRun);
  EXPECT_NE(run.find("\"scenario\":\"serve\""), std::string::npos);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1,\"misses\":1"), std::string::npos);
}

TEST(Server, CsvFormatFramesHeaderAndRows) {
  Server server;
  const std::string response = server.handle(
      std::string(kFig5aRun).substr(0, std::string(kFig5aRun).size() - 1) +
      R"(,"format":"csv"})");
  const size_t first_nl = response.find('\n');
  EXPECT_EQ(response.substr(0, first_nl),
            "{\"ok\":true,\"type\":\"run\",\"format\":\"csv\",\"rows\":1,"
            "\"lines\":2}");
  const size_t second_nl = response.find('\n', first_nl + 1);
  EXPECT_EQ(response.substr(first_nl + 1, second_nl - first_nl - 1),
            Report::csv_header());
  EXPECT_EQ(std::count(response.begin(), response.end(), '\n'), 3);
}

TEST(Server, SearchRequestFindsAConfigOnTheAnalyticBackend) {
  Server server;
  const std::string response = server.handle(
      R"({"type":"search","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("batch":64,"method":"bf","backend":"analytic","jobs":2})");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"type\":\"search\"", 0), 0u);
  EXPECT_NE(response.find("\"found\":true"), std::string::npos);
  EXPECT_NE(response.find("\"method\":\"Breadth-first\""),
            std::string::npos);
  EXPECT_EQ(response, server.handle(
      R"({"type":"search","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("batch":64,"method":"bf","backend":"analytic","jobs":2})"));
}

TEST(Server, ListAndPresetRequests) {
  Server server;
  const std::string models = server.handle(R"({"type":"list","what":"models"})");
  EXPECT_NE(models.find("\"models\":[\"52b\",\"6.6b\""), std::string::npos);
  EXPECT_EQ(models.find("\"clusters\""), std::string::npos);
  const std::string all = server.handle(R"({"type":"list"})");
  EXPECT_NE(all.find("\"clusters\""), std::string::npos);
  EXPECT_NE(all.find("\"scenarios\""), std::string::npos);

  const std::string preset =
      server.handle(R"({"type":"run","preset":"fig5a-bf-b16"})");
  EXPECT_NE(preset.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(preset.find("\"scenario\":\"fig5a-bf-b16\""), std::string::npos);
}

TEST(Server, CacheSizeZeroMeansEveryRequestRecomputes) {
  ServeOptions options;
  options.cache_capacity = 0;
  Server server(options);
  const std::string first = server.handle(kFig5aRun);
  const std::string second = server.handle(kFig5aRun);
  EXPECT_EQ(first, second);  // still deterministic, just recomputed
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":0,\"misses\":2"), std::string::npos);
  EXPECT_NE(stats.find("\"capacity\":0"), std::string::npos);
}

// ---- Transports ----

TEST(Server, StdioTransportAnswersLineRequests) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("{\"id\":1,\"type\":\"ping\"}\n", in);
  std::fputs(kFig5aRun, in);
  std::fputs("\n{\"type\":\"shutdown\"}\n", in);
  std::fputs("{\"type\":\"ping\"}\n", in);  // after shutdown: unread
  std::rewind(in);

  Server server;
  EXPECT_EQ(server.serve_stdio(in, out), 0);
  EXPECT_TRUE(server.shutdown_requested());

  std::rewind(out);
  std::string output;
  char chunk[256];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), out)) > 0) {
    output.append(chunk, n);
  }
  std::fclose(in);
  std::fclose(out);
  EXPECT_EQ(output.rfind("{\"id\":1,\"ok\":true,\"type\":\"pong\"}\n", 0),
            0u);
  EXPECT_NE(output.find("\"type\":\"run\""), std::string::npos);
  EXPECT_NE(output.find("\"type\":\"shutdown\""), std::string::npos);
  // The post-shutdown ping is never read: exactly one pong in the output.
  const size_t first_pong = output.find("\"type\":\"pong\"");
  EXPECT_EQ(output.find("\"type\":\"pong\"", first_pong + 1),
            std::string::npos);
}

TEST(Transports, FinalUnterminatedLineIsReturnedByBothLineReaders) {
  // Identical bytes through the TCP reader (Stream over a pipe) and the
  // stdio reader: a terminated CRLF line, then a final line lacking the
  // trailing newline. Both must hand back both lines, then EOF.
  const char bytes[] = "{\"type\":\"one\"}\r\n{\"type\":\"two\"}";
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], bytes, sizeof(bytes) - 1),
            static_cast<ssize_t>(sizeof(bytes) - 1));
  ::close(fds[1]);
  net::Stream stream(fds[0]);
  std::string line;
  ASSERT_TRUE(stream.read_line(line));
  EXPECT_EQ(line, "{\"type\":\"one\"}");
  ASSERT_TRUE(stream.read_line(line));
  EXPECT_EQ(line, "{\"type\":\"two\"}");
  EXPECT_FALSE(stream.read_line(line));

  std::FILE* file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  std::fputs(bytes, file);
  std::rewind(file);
  ASSERT_TRUE(net::read_stdio_line(file, line));
  EXPECT_EQ(line, "{\"type\":\"one\"}");
  ASSERT_TRUE(net::read_stdio_line(file, line));
  EXPECT_EQ(line, "{\"type\":\"two\"}");
  EXPECT_FALSE(net::read_stdio_line(file, line));
  std::fclose(file);
}

TEST(Transports, LoneCarriageReturnAtEofIsEofOnBothLineReaders) {
  // The one divergence the transports used to have: a final "\r" with no
  // newline. Both now strip it and report EOF (nothing useful left).
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "\r", 1), 1);
  ::close(fds[1]);
  net::Stream stream(fds[0]);
  std::string line;
  EXPECT_FALSE(stream.read_line(line));

  std::FILE* file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  std::fputs("\r", file);
  std::rewind(file);
  EXPECT_FALSE(net::read_stdio_line(file, line));
  std::fclose(file);
}

TEST(Transports, SendTimeoutReportsWhetherTheKernelTookIt) {
  // The server leans on SO_SNDTIMEO for its bounded-shutdown guarantee,
  // so a rejected setsockopt (here: ENOTSOCK on a pipe-backed Stream)
  // must be reported, not silently swallowed as if the bound held.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  net::Stream pipe_end(pipe_fds[0]);
  EXPECT_FALSE(pipe_end.set_send_timeout(1));
  ::close(pipe_fds[1]);

  int sock_fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sock_fds), 0);
  net::Stream writer(sock_fds[0]);
  net::Stream reader(sock_fds[1]);
  EXPECT_TRUE(writer.set_send_timeout(1));
}

TEST(Transports, SendTimeoutUnblocksWritersOnStuckPeers) {
  // A peer that never reads must not be able to block write_all forever
  // (it would also wedge the server's shutdown join). With a 1s send
  // timeout, flooding the socket reports the peer gone instead.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Stream writer(fds[0]);
  net::Stream reader(fds[1]);  // never reads a byte
  ASSERT_TRUE(writer.set_send_timeout(1));
  const std::string blob(4 << 20, 'x');
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(writer.write_all(blob));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 20.0);  // bounded, not hung (generous for CI)
}

TEST(Server, StdioAnswersAFinalRequestLackingItsNewline) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("{\"id\":1,\"type\":\"ping\"}", in);  // no trailing newline
  std::rewind(in);
  Server server;
  EXPECT_EQ(server.serve_stdio(in, out), 0);
  std::rewind(out);
  std::string output;
  char chunk[256];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), out)) > 0) {
    output.append(chunk, n);
  }
  std::fclose(in);
  std::fclose(out);
  EXPECT_EQ(output, "{\"id\":1,\"ok\":true,\"type\":\"pong\"}\n");
}

TEST(Server, TcpTransportServesALoopbackClient) {
  // An ephemeral-port listener; skip (not fail) where the sandbox forbids
  // binding loopback sockets.
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  const int port = listener->port();
  ASSERT_GT(port, 0);

  std::string got_ping, got_stats;
  std::thread client([&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    net::Stream stream(fd);
    ASSERT_TRUE(stream.write_all("{\"type\":\"ping\"}\n"));
    ASSERT_TRUE(stream.read_line(got_ping));
    ASSERT_TRUE(stream.write_all("{\"type\":\"stats\"}\n"));
    ASSERT_TRUE(stream.read_line(got_stats));
    ASSERT_TRUE(stream.write_all("{\"type\":\"shutdown\"}\n"));
    std::string bye;
    ASSERT_TRUE(stream.read_line(bye));
  });

  // Serve the one client on this thread (the accept loop exits once the
  // shutdown request lands).
  ServeOptions options;
  Server server(options);
  std::optional<net::Stream> stream = listener->accept();
  ASSERT_TRUE(stream.has_value());
  std::string line;
  while (!server.shutdown_requested() && stream->read_line(line)) {
    const std::string response = server.handle(line);
    if (!response.empty() && !stream->write_all(response)) break;
  }
  client.join();
  EXPECT_EQ(got_ping, "{\"ok\":true,\"type\":\"pong\"}");
  EXPECT_NE(got_stats.find("\"requests\":2"), std::string::npos);
  EXPECT_TRUE(server.shutdown_requested());
}

// ---- Concurrent clients + persistence ----

// Connects to 127.0.0.1:`port`; -1 on failure.
int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads `n` response lines, re-appending the '\n' framing so the result
// is byte-comparable against Server::handle() output.
bool read_lines(net::Stream& stream, size_t n, std::string& out) {
  out.clear();
  std::string line;
  for (size_t i = 0; i < n; ++i) {
    if (!stream.read_line(line)) return false;
    out += line + "\n";
  }
  return true;
}

TEST(Server, ConcurrentClientsMatchSerialExecutionAndShareOneCache) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  const int port = listener->port();

  constexpr int kClients = 4;
  ServeOptions options;
  options.max_connections = kClients + 2;  // all workers + the idle client
  Server server(options);
  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  // Each client gets a disjoint set of cells (deterministic hit/miss
  // accounting), issued twice: the repeat must be a byte-identical hit.
  auto run_request = [](int i) {
    return str_format(
        R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib","pp":4,)"
        R"("tp":2,"dp":8,"nmb":%d,"schedule":"bf","loop":2,)"
        R"("backend":"analytic"})",
        4 * (i + 1));
  };
  auto sweep_request = [](int i) {
    return str_format(
        R"({"type":"sweep","model":"6.6b","cluster":"dgx1-v100-ib",)"
        R"("pp":[4],"tp":[2],"dp":[8],"nmb":[%d,%d],"schedule":["bf"],)"
        R"("loop":[2],"backend":"analytic"})",
        24 + 8 * i, 28 + 8 * i);
  };
  // The serial reference: the same requests through handle() on one
  // thread of a fresh server. Concurrent transport responses must be
  // byte-identical to these.
  std::vector<std::string> expected_run(kClients), expected_sweep(kClients);
  {
    Server reference(options);
    for (int i = 0; i < kClients; ++i) {
      expected_run[static_cast<size_t>(i)] = reference.handle(run_request(i));
      expected_sweep[static_cast<size_t>(i)] =
          reference.handle(sweep_request(i));
    }
  }

  // An idle client that connects first and never sends a byte: with the
  // old serial accept loop this starved every client below (and this
  // test would hang); now it must delay no one.
  const int idle_fd = connect_loopback(port);
  ASSERT_GE(idle_fd, 0);
  net::Stream idle(idle_fd);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      net::Stream stream(fd);
      std::string got;
      for (int repeat = 0; repeat < 2; ++repeat) {
        ASSERT_TRUE(stream.write_all(run_request(i) + "\n"));
        ASSERT_TRUE(read_lines(stream, 1, got));
        EXPECT_EQ(got, expected_run[static_cast<size_t>(i)]);
        ASSERT_TRUE(stream.write_all(sweep_request(i) + "\n"));
        ASSERT_TRUE(read_lines(stream, 3, got));  // header + 2 rows
        EXPECT_EQ(got, expected_sweep[static_cast<size_t>(i)]);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Exact shared-cache accounting across all sessions: per client one
  // run cell and two sweep cells, each missed once then hit once.
  const ReportCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.misses, 3u * kClients);
  EXPECT_EQ(stats.hits, 3u * kClients);
  EXPECT_EQ(stats.insertions, 3u * kClients);

  // Orderly shutdown from yet another connection; the idle client is
  // drained (EOF), not abandoned.
  const int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);
  net::Stream stopper(fd);
  ASSERT_TRUE(stopper.write_all("{\"type\":\"shutdown\"}\n"));
  std::string bye;
  ASSERT_TRUE(stopper.read_line(bye));
  EXPECT_EQ(bye, "{\"ok\":true,\"type\":\"shutdown\"}");
  serve_thread.join();
  std::string nothing;
  EXPECT_FALSE(idle.read_line(nothing));
  EXPECT_TRUE(server.shutdown_requested());
}

// ---- Single-flight coalescing (server + transport level) ----

// The cell (and matching request line) the coalescing tests race on:
// 6.6B, pp4/tp2/dp8, nmb8, bf, loop 2 on the default sim backend.
Scenario coalesced_cell() {
  return ScenarioBuilder()
      .model("6.6b")
      .cluster("dgx1-v100-ib")
      .pp(4)
      .tp(2)
      .dp(8)
      .nmb(8)
      .schedule("bf")
      .loop(2)
      .build();
}

constexpr const char* kCoalescedRun =
    R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib","pp":4,)"
    R"("tp":2,"dp":8,"nmb":8,"schedule":"bf","loop":2})";

TEST(Server, ConcurrentClientsRacingAColdCellCoalesceToOneComputation) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }

  ServeOptions options;
  options.max_connections = 8;
  Server server(options);

  // Claim leadership of the exact cell the clients will request: until
  // this test publishes, every client is provably concurrent with the
  // (held) computation, so the coalescing counts below are exact, not
  // timing-dependent.
  const std::string key =
      cache_key(coalesced_cell(), std::nullopt, options.run);
  ASSERT_TRUE(server.cache().probe_or_lead(key).leader);

  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  // What the response must look like, from an unrelated serial server.
  Server reference;
  const std::string expected = reference.handle(kCoalescedRun);
  ASSERT_NE(expected.find("\"found\":true"), std::string::npos);

  constexpr size_t kClients = 4;
  std::vector<std::string> got(kClients);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const int fd = connect_loopback(listener->port());
      EXPECT_GE(fd, 0);
      if (fd < 0) return;
      net::Stream stream(fd);
      EXPECT_TRUE(stream.write_all(std::string(kCoalescedRun) + "\n"));
      (void)read_lines(stream, 1, got[i]);
    });
  }
  // All N clients join the in-flight entry (none recomputes)...
  ASSERT_TRUE(
      poll_until([&] { return server.cache_stats().coalesced == kClients; }));
  EXPECT_EQ(server.cache_stats().inflight, 1u);
  // ...then the leader (this test) computes the cell once and publishes.
  server.cache().publish(key, run(coalesced_cell(), options.run));
  for (std::thread& client : clients) client.join();

  // Byte-identical responses for everyone, exactly one insert, N
  // coalesced waits and zero duplicate computations.
  for (const std::string& response : got) EXPECT_EQ(response, expected);
  const ReportCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.coalesced, kClients);
  EXPECT_EQ(stats.misses, 1u);  // the held leadership claim
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.inflight, 0u);

  server.request_shutdown();
  serve_thread.join();
}

TEST(Server, InfeasibleCellReleasesFollowersAndCachesTheNegativeOnce) {
  // Leader-failure semantics, full path: followers parked on a cell
  // whose leader goes away must not hang - one of them re-leads, the
  // infeasible result is computed once, published as a negative
  // (found=false) entry, and every client gets identical bytes.
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }

  const std::string oom_req =
      R"({"type":"run","model":"52b","cluster":"dgx1-v100-ib","pp":1,)"
      R"("tp":1,"dp":64,"nmb":1,"schedule":"gpipe"})";
  const Scenario oom_cell = ScenarioBuilder()
                                .model("52b")
                                .cluster("dgx1-v100-ib")
                                .pp(1)
                                .tp(1)
                                .dp(64)
                                .nmb(1)
                                .schedule("gpipe")
                                .build();

  ServeOptions options;
  options.max_connections = 8;
  Server server(options);
  const std::string key = cache_key(oom_cell, std::nullopt, options.run);
  ASSERT_TRUE(server.cache().probe_or_lead(key).leader);

  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  Server reference;
  const std::string expected = reference.handle(oom_req);
  ASSERT_NE(expected.find("\"found\":false"), std::string::npos);
  ASSERT_NE(expected.find("[oom]"), std::string::npos);

  constexpr size_t kClients = 4;
  std::vector<std::string> got(kClients);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const int fd = connect_loopback(listener->port());
      EXPECT_GE(fd, 0);
      if (fd < 0) return;
      net::Stream stream(fd);
      EXPECT_TRUE(stream.write_all(oom_req + "\n"));
      (void)read_lines(stream, 1, got[i]);
    });
  }
  ASSERT_TRUE(
      poll_until([&] { return server.cache_stats().coalesced == kClients; }));
  // The erroring leader abandons instead of publishing. Exactly one
  // follower re-leads (probes are serialized on the cache mutex), the
  // others re-wait or hit - nobody waits forever.
  server.cache().abandon(key);
  for (std::thread& client : clients) client.join();

  for (const std::string& response : got) EXPECT_EQ(response, expected);
  const ReportCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.insertions, 1u);  // the negative result, cached once
  EXPECT_EQ(stats.misses, 2u);      // the held claim + the one re-lead
  EXPECT_GE(stats.coalesced, kClients);
  EXPECT_EQ(stats.inflight, 0u);
  // The negative entry is now a plain hit for everyone else.
  EXPECT_EQ(server.handle(oom_req), expected);

  server.request_shutdown();
  serve_thread.join();
}

TEST(Server, OverlappingSweepsShareInFlightCells) {
  // Coalescing is per *cell*, not per request: a sweep whose grid
  // contains a cell already in flight (here: held by the test, as if an
  // overlapping sweep were computing it) waits for that one cell while
  // computing its own, and renders byte-identically to a serial sweep.
  Server server;
  RunOptions analytic;
  analytic.backend = Backend::kAnalytic;
  const Scenario shared_cell = ScenarioBuilder()
                                   .model("6.6b")
                                   .cluster("dgx1-v100-ib")
                                   .pp(4)
                                   .tp(2)
                                   .dp(8)
                                   .nmb(16)
                                   .schedule("bf")
                                   .loop(2)
                                   .build();
  const std::string key = cache_key(shared_cell, std::nullopt, analytic);
  ASSERT_TRUE(server.cache().probe_or_lead(key).leader);

  const std::string sweep_req =
      R"({"type":"sweep","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("pp":[4],"tp":[2],"dp":[8],"nmb":[8,16],"schedule":["bf"],)"
      R"("loop":[2],"backend":"analytic"})";
  std::string got;
  std::thread sweeper([&] { got = server.handle(sweep_req); });
  // The sweep computes its nmb=8 cell itself and coalesces on nmb=16.
  ASSERT_TRUE(poll_until([&] { return server.cache_stats().coalesced == 1u; }));
  server.cache().publish(key, run(shared_cell, analytic));
  sweeper.join();

  Server reference;
  EXPECT_EQ(got, reference.handle(sweep_req));
  const ReportCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.coalesced, 1u);   // the shared cell was not recomputed
  EXPECT_EQ(stats.misses, 2u);      // the held claim + the sweep's own cell
  EXPECT_EQ(stats.insertions, 2u);  // one per distinct cell
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(Server, TcpAnswersUnterminatedFinalRequestAndRequestShutdownDrains) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  Server server;
  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  const int fd = connect_loopback(listener->port());
  ASSERT_GE(fd, 0);
  net::Stream client(fd);
  // A request lacking its trailing newline, then half-close: the session
  // must still answer it (same contract as the stdio transport).
  ASSERT_TRUE(client.write_all("{\"type\":\"ping\"}"));
  ::shutdown(client.fd(), SHUT_WR);
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  EXPECT_EQ(line, "{\"ok\":true,\"type\":\"pong\"}");

  // Programmatic shutdown (no client involved) wakes the accept loop.
  server.request_shutdown();
  serve_thread.join();
  EXPECT_TRUE(server.shutdown_requested());
}

// ---- Event-loop serving core: saturation, admission, backpressure ----

TEST(ServeStatsWire, RoundTripsLosslesslyAndRejectsTruncation) {
  ServeStats stats;
  stats.requests = 42;
  stats.cache.entries = 3;
  stats.cache.capacity = 1024;
  stats.cache.hits = 7;
  stats.cache.misses = 5;
  stats.cache.insertions = 5;
  stats.cache.evictions = 2;
  stats.cache.coalesced = 4;
  stats.cache.inflight = 1;
  stats.connections.active = 6;
  stats.connections.reading = 3;
  stats.connections.processing = 2;
  stats.connections.writing = 1;
  stats.connections.accepted = 9;
  stats.connections.rejected = 2;
  stats.queues.dispatch_backlog = 11;
  stats.queues.executing = 4;
  stats.latency.count = 13;
  stats.latency.sum_us = 12345;
  stats.latency.p50_us = 127;
  stats.latency.p99_us = 1023;
  for (size_t i = 0; i < ServeStats::kLatencyBuckets; ++i) {
    stats.latency.buckets.push_back(i);
  }
  const std::string wire = stats.to_wire();
  const ServeStats back = ServeStats::from_wire(json::parse(wire));
  EXPECT_EQ(back.to_wire(), wire);  // byte-identical round trip
  EXPECT_THROW(ServeStats::from_wire(json::parse(R"({"schema":1})")),
               ConfigError);
}

TEST(Server, MetricsRequestSharesTheVersionedStatsSchema) {
  Server server;
  (void)server.handle(R"({"type":"ping"})");
  (void)server.handle(R"({"type":"ping"})");
  const std::string response = server.handle(R"({"type":"metrics"})");
  ASSERT_EQ(response.rfind("{\"ok\":true,\"type\":\"metrics\",\"schema\":1,", 0),
            0u);
  // The whole response line parses back into a ServeStats: the payload
  // is exactly the shared wire schema (from_wire ignores the ok/type
  // preamble).
  const ServeStats stats = ServeStats::from_wire(
      json::parse(response.substr(0, response.size() - 1)));
  EXPECT_EQ(stats.requests, 3u);       // stats/metrics count themselves...
  EXPECT_EQ(stats.latency.count, 2u);  // ...but are timed after responding
  ASSERT_EQ(stats.latency.buckets.size(), ServeStats::kLatencyBuckets);
  uint64_t histogram_total = 0;
  for (const uint64_t b : stats.latency.buckets) histogram_total += b;
  EXPECT_EQ(histogram_total, 2u);
  EXPECT_GE(stats.latency.p50_us, 1u);
  EXPECT_GE(stats.latency.p99_us, stats.latency.p50_us);
  // `stats` splices the identical emitter after its own type tag, and
  // the pre-metrics response shape (top-level "requests", hits/misses
  // adjacency) survives the unification.
  const std::string stats_response = server.handle(R"({"type":"stats"})");
  ASSERT_EQ(stats_response.rfind("{\"ok\":true,\"type\":\"stats\",\"schema\":1,",
                                 0),
            0u);
  EXPECT_NE(stats_response.find("\"requests\":4"), std::string::npos);
  EXPECT_NE(stats_response.find("\"hits\":0,\"misses\":0"), std::string::npos);
}

TEST(Server, OverCapConnectionsAreExplicitlyRejectedAndCounted) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  ServeOptions options;
  options.max_connections = 2;
  Server server(options);
  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  // Fill the cap; a ping round trip per client proves both are admitted
  // (admission happens on accept, inside the event loop).
  const int fd1 = connect_loopback(listener->port());
  const int fd2 = connect_loopback(listener->port());
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  net::Stream first(fd1);
  net::Stream second(fd2);
  std::string line;
  for (net::Stream* admitted : {&first, &second}) {
    ASSERT_TRUE(admitted->write_all("{\"type\":\"ping\"}\n"));
    ASSERT_TRUE(admitted->read_line(line));
    EXPECT_EQ(line, "{\"ok\":true,\"type\":\"pong\"}");
  }

  // The connection over the cap gets one explicit error line and EOF -
  // never a silent stall in the kernel backlog.
  const int fd3 = connect_loopback(listener->port());
  ASSERT_GE(fd3, 0);
  net::Stream third(fd3);
  ASSERT_TRUE(third.read_line(line));
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("connection limit reached"), std::string::npos);
  EXPECT_NE(line.find("--max-connections 2"), std::string::npos);
  EXPECT_FALSE(third.read_line(line));  // closed right after the refusal

  // The rejection is visible in the metrics an admitted client reads.
  ASSERT_TRUE(first.write_all("{\"type\":\"metrics\"}\n"));
  ASSERT_TRUE(first.read_line(line));
  const ServeStats stats = ServeStats::from_wire(json::parse(line));
  EXPECT_EQ(stats.connections.accepted, 2u);
  EXPECT_EQ(stats.connections.rejected, 1u);
  EXPECT_EQ(stats.connections.active, 2);

  ASSERT_TRUE(first.write_all("{\"type\":\"shutdown\"}\n"));
  ASSERT_TRUE(first.read_line(line));
  serve_thread.join();
}

TEST(Server, BurstyClientIsBackpressuredWithoutStallingOthers) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  ServeOptions options;
  options.max_inflight_per_client = 2;
  Server server(options);
  // Hold the cell the burst will request: every dispatched copy parks as
  // a coalescing follower until this test publishes.
  const std::string key =
      cache_key(coalesced_cell(), std::nullopt, options.run);
  ASSERT_TRUE(server.cache().probe_or_lead(key).leader);
  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  Server reference;
  const std::string expected = reference.handle(kCoalescedRun);

  // A bursty client pipelines six copies without reading a byte. The
  // per-connection in-flight rule dispatches exactly one at a time, so
  // exactly one follower parks on the held cell; the rest wait their
  // turn in the connection's own queue (or its socket, once the
  // in-flight cap gates POLLIN off).
  const int fd = connect_loopback(listener->port());
  ASSERT_GE(fd, 0);
  net::Stream bursty(fd);
  std::string burst;
  for (int i = 0; i < 6; ++i) burst += std::string(kCoalescedRun) + "\n";
  ASSERT_TRUE(bursty.write_all(burst));
  ASSERT_TRUE(poll_until([&] { return server.cache_stats().coalesced == 1u; }));

  // A second client gets served while the burst is parked: the event
  // loop never blocks behind a busy or backpressured connection.
  const int fd2 = connect_loopback(listener->port());
  ASSERT_GE(fd2, 0);
  net::Stream nimble(fd2);
  std::string line;
  ASSERT_TRUE(nimble.write_all("{\"type\":\"ping\"}\n"));
  ASSERT_TRUE(nimble.read_line(line));
  EXPECT_EQ(line, "{\"ok\":true,\"type\":\"pong\"}");
  EXPECT_EQ(server.cache_stats().coalesced, 1u);  // still exactly one

  // Publishing releases the follower; the backlog drains in request
  // order with byte-identical responses (one coalesced wait, five hits).
  server.cache().publish(key, run(coalesced_cell(), options.run));
  std::string got;
  ASSERT_TRUE(read_lines(bursty, 6, got));
  std::string six;
  for (int i = 0; i < 6; ++i) six += expected;
  EXPECT_EQ(got, six);
  EXPECT_EQ(server.cache_stats().hits, 5u);

  server.request_shutdown();
  serve_thread.join();
}

TEST(Server, ClientVanishingMidResponseDoesNotDisturbOthers) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  Server server;
  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  // A client that sends a request and vanishes before the response: the
  // computation still finishes (and warms the cache); the dead socket is
  // reaped, not crashed into.
  {
    const int fd = connect_loopback(listener->port());
    ASSERT_GE(fd, 0);
    net::Stream doomed(fd);
    ASSERT_TRUE(doomed.write_all(std::string(kCoalescedRun) + "\n"));
  }  // ~Stream closes the socket mid-computation
  ASSERT_TRUE(
      poll_until([&] { return server.cache_stats().insertions == 1u; }));

  const int fd = connect_loopback(listener->port());
  ASSERT_GE(fd, 0);
  net::Stream survivor(fd);
  Server reference;
  const std::string expected = reference.handle(kCoalescedRun);
  std::string got;
  ASSERT_TRUE(survivor.write_all(std::string(kCoalescedRun) + "\n"));
  ASSERT_TRUE(read_lines(survivor, 1, got));
  EXPECT_EQ(got, expected);  // served from the cache the doomed run warmed
  EXPECT_EQ(server.cache_stats().hits, 1u);

  // The vanished connection is reaped (EOF or flush error), leaving only
  // the survivor active. The gauge refreshes per loop tick, so poll.
  ServeStats seen;
  ASSERT_TRUE(poll_until([&] {
    if (!survivor.write_all("{\"type\":\"metrics\"}\n")) return false;
    std::string line;
    if (!survivor.read_line(line)) return false;
    seen = ServeStats::from_wire(json::parse(line));
    return seen.connections.active == 1;
  }));
  EXPECT_EQ(seen.connections.accepted, 2u);

  server.request_shutdown();
  serve_thread.join();
}

TEST(Server, SaturationSixtyFourMixedClientsGetByteIdenticalResponses) {
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  constexpr int kClients = 64;
  constexpr int kIdle = 4;
  ServeOptions options;
  options.max_connections = kClients + kIdle + 2;
  Server server(options);
  std::thread serve_thread([&] { EXPECT_EQ(server.serve_on(*listener), 0); });

  // Per-client unique cells plus one cell every client races on (nmb=6,
  // disjoint from the unique nmb=4*(i+1) series).
  auto unique_run = [](int i) {
    return str_format(
        R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib","pp":4,)"
        R"("tp":2,"dp":8,"nmb":%d,"schedule":"bf","loop":2,)"
        R"("backend":"analytic"})",
        4 * (i + 1));
  };
  const std::string shared_run =
      R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib","pp":4,)"
      R"("tp":2,"dp":8,"nmb":6,"schedule":"bf","loop":2,)"
      R"("backend":"analytic"})";

  // The serial reference a fresh server produces on one thread: every
  // concurrent transport response must be byte-identical to it.
  std::vector<std::string> expected(kClients);
  std::string expected_shared;
  {
    Server reference(options);
    for (int i = 0; i < kClients; ++i) {
      expected[static_cast<size_t>(i)] = reference.handle(unique_run(i));
    }
    expected_shared = reference.handle(shared_run);
  }

  // Idle connections held open across the whole run: they must cost
  // nothing and delay no one.
  std::vector<std::unique_ptr<net::Stream>> idles;
  for (int i = 0; i < kIdle; ++i) {
    const int fd = connect_loopback(listener->port());
    ASSERT_GE(fd, 0);
    idles.push_back(std::make_unique<net::Stream>(fd));
  }

  // Mixed traffic: even clients pipeline all three requests in one
  // write; odd clients trickle them one round trip at a time.
  std::vector<std::string> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const int fd = connect_loopback(listener->port());
      EXPECT_GE(fd, 0);
      if (fd < 0) return;
      net::Stream stream(fd);
      const std::string requests =
          unique_run(i) + "\n" + shared_run + "\n" + unique_run(i) + "\n";
      std::string lines;
      if (i % 2 == 0) {
        EXPECT_TRUE(stream.write_all(requests));
        if (read_lines(stream, 3, lines)) got[static_cast<size_t>(i)] = lines;
        return;
      }
      for (const std::string& request :
           {unique_run(i), shared_run, unique_run(i)}) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_TRUE(stream.write_all(request + "\n"));
        if (!read_lines(stream, 1, lines)) return;
        got[static_cast<size_t>(i)] += lines;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)],
              expected[static_cast<size_t>(i)] + expected_shared +
                  expected[static_cast<size_t>(i)])
        << "client " << i;
  }

  // Exact shared-cache accounting: 64 unique cells each missed once and
  // hit once, plus the shared cell - computed exactly once, with the
  // other 63 requests split between coalesced waits and plain hits
  // depending on arrival time (the split is timing, the sum is not).
  const ReportCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.misses, kClients + 1u);
  EXPECT_EQ(stats.insertions, kClients + 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, 2u * kClients - 1u);
  EXPECT_EQ(stats.inflight, 0u);

  // Orderly drain: the idle clients get EOF, not abandonment.
  const int fd = connect_loopback(listener->port());
  ASSERT_GE(fd, 0);
  net::Stream stopper(fd);
  ASSERT_TRUE(stopper.write_all("{\"type\":\"shutdown\"}\n"));
  std::string bye;
  ASSERT_TRUE(stopper.read_line(bye));
  EXPECT_EQ(bye, "{\"ok\":true,\"type\":\"shutdown\"}");
  serve_thread.join();
  for (const std::unique_ptr<net::Stream>& idle : idles) {
    std::string nothing;
    EXPECT_FALSE(idle->read_line(nothing));
  }
}

TEST(Server, CacheFileWarmRestartServesEntirelyFromCache) {
  const std::string path = testing::TempDir() + "bfpp_serve_cache.jsonl";
  std::remove(path.c_str());
  ServeOptions options;
  options.cache_file = path;

  const std::string run_req =
      R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib","pp":4,)"
      R"("tp":2,"dp":8,"nmb":8,"schedule":"bf","loop":2,"backend":"analytic"})";
  const std::string search_req =
      R"({"type":"search","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("batch":64,"method":"bf","backend":"analytic"})";
  const std::string oom_req =
      R"({"type":"run","model":"52b","cluster":"dgx1-v100-ib","pp":1,)"
      R"("tp":1,"dp":64,"nmb":1,"schedule":"gpipe"})";

  std::string first_run, first_search, first_oom;
  {
    Server server(options);
    first_run = server.handle(run_req);
    first_search = server.handle(search_req);  // frugal block on the wire
    first_oom = server.handle(oom_req);        // negative entry persisted
    ASSERT_TRUE(server.persist_cache());
  }

  Server restarted(options);
  EXPECT_EQ(restarted.handle(run_req), first_run);
  EXPECT_EQ(restarted.handle(search_req), first_search);
  EXPECT_EQ(restarted.handle(oom_req), first_oom);
  const ReportCache::Stats stats = restarted.cache_stats();
  EXPECT_EQ(stats.hits, 3u);    // every request answered from the cache
  EXPECT_EQ(stats.misses, 0u);  // nothing recomputed after the restart
  EXPECT_EQ(stats.insertions, 0u);
  std::remove(path.c_str());
}

TEST(Server, PersistCacheWithoutACacheFileIsANoOp) {
  Server server;
  (void)server.handle(R"({"type":"ping"})");
  EXPECT_FALSE(server.persist_cache());
}

// ---- Periodic checkpoints (--checkpoint-interval) ----

TEST(Server, CheckpointerPersistsDirtyCacheWhileHandlersRace) {
  // The background checkpoint thread must pick up a dirty cache on its
  // own: handle() never saves (write-through lives in the serve loops,
  // which are not involved here), so the snapshot appearing on disk
  // proves the checkpointer wrote it - while racing mutating requests
  // from several session-like threads (the TSan job runs this test).
  const std::string path = testing::TempDir() + "bfpp_checkpoint.jsonl";
  std::remove(path.c_str());
  ServeOptions options;
  options.cache_file = path;
  options.checkpoint_interval = 1;
  options.run.backend = Backend::kAnalytic;

  {
    Server server(options);
    server.start_checkpointer();
    constexpr int kThreads = 3;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&server, t] {
        for (int i = 0; i < 4; ++i) {
          const std::string response = server.handle(str_format(
              R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib",)"
              R"("pp":4,"tp":2,"dp":8,"nmb":%d,"schedule":"bf","loop":2})",
              4 * (4 * t + i + 1)));
          EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    ASSERT_TRUE(poll_until([&] {
      ReportCache probe(64);
      return probe.load(path) == 12u;  // every cell checkpointed
    }));
    server.stop_checkpointer();
  }

  // The checkpointed snapshot warm-starts a fresh server: pure hits.
  Server restarted(options);
  const std::string again = restarted.handle(
      R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("pp":4,"tp":2,"dp":8,"nmb":4,"schedule":"bf","loop":2})");
  EXPECT_NE(again.find("\"ok\":true"), std::string::npos);
  const ReportCache::Stats stats = restarted.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  std::remove(path.c_str());
}

TEST(Server, CheckpointIntervalSuppressesWriteThroughUntilShutdown) {
  // With an interval configured, the serve loops stop saving after every
  // mutating request - the checkpointer owns periodic saves (its 3600 s
  // interval never fires here) and the shutdown save still runs.
  const std::string path =
      testing::TempDir() + "bfpp_checkpoint_suppress.jsonl";
  std::remove(path.c_str());
  ServeOptions options;
  options.cache_file = path;
  options.checkpoint_interval = 3600;
  options.run.backend = Backend::kAnalytic;

  int in_fds[2], out_fds[2];
  ASSERT_EQ(::pipe(in_fds), 0);
  ASSERT_EQ(::pipe(out_fds), 0);
  std::FILE* in = ::fdopen(in_fds[0], "r");
  std::FILE* out = ::fdopen(out_fds[1], "w");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);

  Server server(options);
  std::thread serving([&] { EXPECT_EQ(server.serve_stdio(in, out), 0); });
  const std::string request =
      R"({"type":"run","model":"6.6b","cluster":"dgx1-v100-ib","pp":4,)"
      R"("tp":2,"dp":8,"nmb":8,"schedule":"bf","loop":2})"
      "\n";
  ASSERT_EQ(::write(in_fds[1], request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  net::Stream reader(out_fds[0]);
  std::string response;
  ASSERT_TRUE(reader.read_line(response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  // The request inserted a cell, but write-through is off: no snapshot.
  EXPECT_FALSE(serialize::read_file(path).has_value());

  ::close(in_fds[1]);  // EOF ends the serve loop -> final shutdown save
  serving.join();
  EXPECT_TRUE(serialize::read_file(path).has_value());
  std::fclose(in);
  std::fclose(out);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bfpp::api
