// Tests for the `bfpp serve` experiment server (api/server.h): the LRU
// ReportCache and its key construction, the line-delimited JSON
// protocol, cached-response byte identity, the JSON request parser
// (common/json.h) and the stdio / TCP transports.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/cli.h"
#include "api/server.h"
#include "common/error.h"
#include "common/json.h"
#include "common/socket.h"

namespace bfpp::api {
namespace {

// ---- common/json.h ----

TEST(Json, ParsesScalarsArraysAndObjects) {
  const json::Value v = json::parse(
      R"({"s":"hi","i":8,"f":2.5,"t":true,"n":null,"a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("s")->as_string(), "hi");
  EXPECT_EQ(v.get("i")->as_int(), 8);
  EXPECT_DOUBLE_EQ(v.get("f")->as_number(), 2.5);
  EXPECT_TRUE(v.get("t")->as_bool());
  EXPECT_TRUE(v.get("n")->is_null());
  ASSERT_EQ(v.get("a")->size(), 3u);
  EXPECT_EQ(v.get("a")->items()[2].as_int(), 3);
  EXPECT_EQ(v.get("o")->get("k")->as_string(), "v");
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  const json::Value v =
      json::parse(R"({"e":"a\"b\\c\nd\u0041\u00e9\ud83d\ude00"})");
  EXPECT_EQ(v.get("e")->as_string(), "a\"b\\c\ndA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), ConfigError);
  EXPECT_THROW(json::parse("{"), ConfigError);
  EXPECT_THROW(json::parse("{\"a\":1,}"), ConfigError);
  EXPECT_THROW(json::parse("{\"a\":1} extra"), ConfigError);
  EXPECT_THROW(json::parse("{'a':1}"), ConfigError);
  EXPECT_THROW(json::parse("nul"), ConfigError);
  EXPECT_THROW(json::parse("\"unterminated"), ConfigError);
  EXPECT_THROW(json::parse("01x"), ConfigError);
  EXPECT_THROW(json::parse(std::string(100, '[')), ConfigError);  // depth cap
  EXPECT_THROW(json::parse("{\"a\":\"\\ud800\"}"), ConfigError);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const json::Value v = json::parse(R"({"s":"x","f":2.5})");
  EXPECT_THROW((void)v.get("s")->as_int("s"), ConfigError);
  EXPECT_THROW((void)v.get("f")->as_int("f"), ConfigError);  // not integral
  EXPECT_THROW((void)v.get("s")->as_bool("s"), ConfigError);
  EXPECT_THROW((void)v.get("f")->as_string("f"), ConfigError);
}

// ---- ReportCache ----

Report tagged_report(const std::string& tag) {
  Report r;
  r.scenario = tag;
  r.found = true;
  return r;
}

TEST(ReportCache, RoundTripsAndCounts) {
  ReportCache cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", tagged_report("a"));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scenario, "a");
  const ReportCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.capacity, 4u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ReportCache, EvictsLeastRecentlyUsedFirst) {
  ReportCache cache(2);
  cache.put("a", tagged_report("a"));
  cache.put("b", tagged_report("b"));
  EXPECT_TRUE(cache.get("a").has_value());   // promote a: LRU order b, a
  cache.put("c", tagged_report("c"));        // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ReportCache, PutRefreshesExistingKeysWithoutEvicting) {
  ReportCache cache(2);
  cache.put("a", tagged_report("a"));
  cache.put("b", tagged_report("b"));
  cache.put("a", tagged_report("a2"));  // refresh, promote a: LRU order b, a
  EXPECT_EQ(cache.stats().insertions, 2u);
  cache.put("c", tagged_report("c"));  // evicts b, not a
  EXPECT_EQ(cache.get("a")->scenario, "a2");
  EXPECT_FALSE(cache.get("b").has_value());
}

TEST(ReportCache, CapacityZeroDisablesCaching) {
  ReportCache cache(0);
  cache.put("a", tagged_report("a"));
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- cache_key ----

Scenario fig5a_scenario() {
  return ScenarioBuilder()
      .model("52b")
      .cluster("dgx1-v100-ib")
      .pp(8)
      .tp(8)
      .nmb(16)
      .schedule("bf")
      .loop(4)
      .build();
}

TEST(CacheKey, IdenticalCellsShareAKey) {
  EXPECT_EQ(cache_key(fig5a_scenario(), std::nullopt, {}),
            cache_key(fig5a_scenario(), std::nullopt, {}));
}

TEST(CacheKey, LabelAndThreadBudgetAreExcluded) {
  // The cosmetic name and the (result-invariant) thread budget must not
  // split the cache: a sweep cell can serve a later run request.
  Scenario relabelled = fig5a_scenario();
  relabelled.name = "some/sweep/label";
  RunOptions threads;
  threads.threads = 7;
  EXPECT_EQ(cache_key(fig5a_scenario(), std::nullopt, {}),
            cache_key(relabelled, std::nullopt, threads));
}

TEST(CacheKey, BackendsKernelsConfigsAndMethodsSplitTheKey) {
  const Scenario s = fig5a_scenario();
  const std::string base = cache_key(s, std::nullopt, {});

  RunOptions analytic;
  analytic.backend = Backend::kAnalytic;
  EXPECT_NE(base, cache_key(s, std::nullopt, analytic));

  RunOptions kernel;
  kernel.kernel = hw::KernelModel{};
  kernel.kernel->max_efficiency = 0.5;
  EXPECT_NE(base, cache_key(s, std::nullopt, kernel));
  RunOptions kernel2 = kernel;
  kernel2.kernel->max_efficiency = 0.51;
  EXPECT_NE(cache_key(s, std::nullopt, kernel),
            cache_key(s, std::nullopt, kernel2));

  Scenario other = ScenarioBuilder()
                       .model("52b")
                       .cluster("dgx1-v100-ib")
                       .pp(8)
                       .tp(8)
                       .nmb(32)  // different micro-batch count
                       .schedule("bf")
                       .loop(4)
                       .build();
  EXPECT_NE(base, cache_key(other, std::nullopt, {}));

  // Overlap capability flags are part of describe(), hence of the key.
  Scenario no_overlap = ScenarioBuilder()
                            .model("52b")
                            .cluster("dgx1-v100-ib")
                            .pp(8)
                            .tp(8)
                            .nmb(16)
                            .schedule("bf")
                            .loop(4)
                            .overlap(false, true)
                            .build();
  EXPECT_NE(base, cache_key(no_overlap, std::nullopt, {}));

  EXPECT_NE(base,
            cache_key(s, autotune::Method::kBreadthFirst, {}));
  EXPECT_NE(cache_key(s, autotune::Method::kBreadthFirst, {}),
            cache_key(s, autotune::Method::kDepthFirst, {}));

  // A resized cluster shares the preset display name but not the key.
  Scenario resized = ScenarioBuilder()
                         .model("52b")
                         .cluster("dgx1-v100-ib:16")
                         .pp(8)
                         .tp(8)
                         .nmb(16)
                         .schedule("bf")
                         .loop(4)
                         .build();
  EXPECT_NE(base, cache_key(resized, std::nullopt, {}));
}

// ---- Server protocol ----

constexpr const char* kFig5aRun =
    R"({"type":"run","model":"52b","cluster":"dgx1-v100-ib","pp":8,"tp":8,)"
    R"("nmb":16,"schedule":"bf","loop":4})";

TEST(Server, PingStatsAndShutdown) {
  Server server;
  EXPECT_EQ(server.handle(R"({"id":7,"type":"ping"})"),
            "{\"id\":7,\"ok\":true,\"type\":\"pong\"}\n");
  EXPECT_EQ(server.handle(R"({"id":"x","type":"ping"})"),
            "{\"id\":\"x\",\"ok\":true,\"type\":\"pong\"}\n");
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"requests\":3"), std::string::npos);
  EXPECT_NE(stats.find("\"hits\":0,\"misses\":0"), std::string::npos);
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_EQ(server.handle(R"({"type":"shutdown"})"),
            "{\"ok\":true,\"type\":\"shutdown\"}\n");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(Server, EchoesLargeIntegerIdsVerbatim) {
  // Correlation ids are commonly epoch-millisecond timestamps; they must
  // come back digit-for-digit, not through %g scientific notation.
  Server server;
  EXPECT_EQ(server.handle(R"({"id":1722300000000,"type":"ping"})"),
            "{\"id\":1722300000000,\"ok\":true,\"type\":\"pong\"}\n");
  EXPECT_EQ(server.handle(R"({"id":-3,"type":"ping"})"),
            "{\"id\":-3,\"ok\":true,\"type\":\"pong\"}\n");
  EXPECT_NE(server.handle(R"({"id":[1],"type":"ping"})")
                .find("\"ok\":false"),
            std::string::npos);
  // An overflowing literal parses to infinity; echoing it would emit
  // bare `inf` and corrupt the response line.
  const std::string inf_id = server.handle(R"({"id":1e400,"type":"ping"})");
  EXPECT_NE(inf_id.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(inf_id.find("inf"), std::string::npos);
}

TEST(Server, RunRequestsRejectASearchMethod) {
  // run simulates one exact configuration; a method field on it would
  // otherwise be silently dropped and mislead.
  Server server;
  const std::string response = server.handle(
      R"({"type":"run","preset":"fig5a-bf-b16","method":"df"})");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("search and sweep"), std::string::npos);
}

TEST(Server, BlankLinesAreKeepAliveNoOps) {
  Server server;
  EXPECT_EQ(server.handle(""), "");
  EXPECT_EQ(server.handle("   \t"), "");
  EXPECT_NE(server.handle(R"({"type":"stats"})").find("\"requests\":1"),
            std::string::npos);
}

TEST(Server, MalformedRequestsBecomeErrorLines) {
  Server server;
  EXPECT_NE(server.handle("not json").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(server.handle("[1,2]").find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(server.handle(R"({"no_type":1})").find("needs a"),
            std::string::npos);
  EXPECT_NE(server.handle(R"({"type":"frobnicate"})")
                .find("unknown request type"),
            std::string::npos);
  // Unknown fields are rejected (typo protection), echoing the id.
  const std::string bad_field =
      server.handle(R"({"id":3,"type":"run","pq":8})");
  EXPECT_EQ(bad_field.rfind("{\"id\":3,\"ok\":false", 0), 0u);
  EXPECT_NE(bad_field.find("unknown field"), std::string::npos);
  EXPECT_NE(bad_field.find("pq"), std::string::npos);
  // A structurally invalid *request* (contradictory flags) is a protocol
  // error; a valid request whose configuration the engine rejects is a
  // found=false row instead (see InfeasibleRunsAreReportRowsNot...).
  EXPECT_NE(server.handle(
                    R"({"type":"run","preset":"fig5a-bf-b16","pp":4})")
                .find("\"ok\":false"),
            std::string::npos);
  // Scenario fields make no sense on a stats request.
  EXPECT_NE(server.handle(R"({"type":"stats","pp":8})").find("\"ok\":false"),
            std::string::npos);
}

TEST(Server, RepeatedRunIsAByteIdenticalCacheHit) {
  Server server;
  const std::string first = server.handle(kFig5aRun);
  EXPECT_EQ(first.rfind("{\"ok\":true,\"type\":\"run\",\"report\":{", 0), 0u);
  EXPECT_NE(first.find("\"found\":true"), std::string::npos);
  EXPECT_EQ(first.find('\n'), first.size() - 1);  // one line
  const std::string second = server.handle(kFig5aRun);
  EXPECT_EQ(first, second);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1,\"misses\":1,\"insertions\":1"),
            std::string::npos);
}

TEST(Server, CacheKeysRespectBackendAndKernelAcrossRequests) {
  Server server;
  (void)server.handle(kFig5aRun);
  // Same cell on another backend: a miss, not a hit.
  const std::string analytic = std::string(kFig5aRun);
  (void)server.handle(analytic.substr(0, analytic.size() - 1) +
                      R"(,"backend":"analytic"})");
  // Same cell with a kernel override: a third miss.
  (void)server.handle(analytic.substr(0, analytic.size() - 1) +
                      R"(,"kernel":{"max_efficiency":0.5}})");
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":0,\"misses\":3,\"insertions\":3"),
            std::string::npos);
}

TEST(Server, InfeasibleRunsAreReportRowsNotProtocolErrors) {
  Server server;
  // 52B replicated on every GPU: out of memory, reported as a
  // found=false row with the reason, and cached like any other result.
  const std::string oom =
      R"({"type":"run","model":"52b","cluster":"dgx1-v100-ib","pp":1,)"
      R"("tp":1,"dp":64,"nmb":1,"schedule":"gpipe"})";
  const std::string first = server.handle(oom);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(first.find("\"found\":false"), std::string::npos);
  EXPECT_NE(first.find("[oom]"), std::string::npos);
  EXPECT_EQ(first, server.handle(oom));
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1,\"misses\":1"), std::string::npos);
}

TEST(Server, SweepStreamsRowsAndServesRepeatsFromTheCache) {
  Server server;
  const std::string sweep =
      R"({"id":1,"type":"sweep","model":"52b","cluster":"dgx1-v100-ib",)"
      R"("pp":[8],"tp":[8],"nmb":[16,32],"schedule":["bf"],"loop":[4]})";
  const std::string first = server.handle(sweep);
  // Framing: one header line announcing the payload, then one compact
  // JSON object per row.
  std::vector<std::string> lines;
  for (size_t pos = 0; pos < first.size();) {
    const size_t nl = first.find('\n', pos);
    lines.push_back(first.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"id\":1,\"ok\":true,\"type\":\"sweep\",\"rows\":2,"
            "\"lines\":2}");
  EXPECT_EQ(lines[1].rfind("{\"scenario\":", 0), 0u);
  EXPECT_NE(lines[1].find("nmb16"), std::string::npos);
  EXPECT_NE(lines[2].find("nmb32"), std::string::npos);

  const std::string second = server.handle(sweep);
  EXPECT_EQ(first, second);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":2,\"misses\":2"), std::string::npos);
}

TEST(Server, RunRequestHitsACellComputedByASweep) {
  // The cache key excludes the label, so the same physical cell is
  // shared between a sweep and a later run request (relabelled).
  Server server;
  (void)server.handle(
      R"({"type":"sweep","model":"52b","cluster":"dgx1-v100-ib",)"
      R"("pp":[8],"tp":[8],"nmb":[16],"schedule":["bf"],"loop":[4]})");
  const std::string run = server.handle(kFig5aRun);
  EXPECT_NE(run.find("\"scenario\":\"serve\""), std::string::npos);
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":1,\"misses\":1"), std::string::npos);
}

TEST(Server, CsvFormatFramesHeaderAndRows) {
  Server server;
  const std::string response = server.handle(
      std::string(kFig5aRun).substr(0, std::string(kFig5aRun).size() - 1) +
      R"(,"format":"csv"})");
  const size_t first_nl = response.find('\n');
  EXPECT_EQ(response.substr(0, first_nl),
            "{\"ok\":true,\"type\":\"run\",\"format\":\"csv\",\"rows\":1,"
            "\"lines\":2}");
  const size_t second_nl = response.find('\n', first_nl + 1);
  EXPECT_EQ(response.substr(first_nl + 1, second_nl - first_nl - 1),
            Report::csv_header());
  EXPECT_EQ(std::count(response.begin(), response.end(), '\n'), 3);
}

TEST(Server, SearchRequestFindsAConfigOnTheAnalyticBackend) {
  Server server;
  const std::string response = server.handle(
      R"({"type":"search","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("batch":64,"method":"bf","backend":"analytic","jobs":2})");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"type\":\"search\"", 0), 0u);
  EXPECT_NE(response.find("\"found\":true"), std::string::npos);
  EXPECT_NE(response.find("\"method\":\"Breadth-first\""),
            std::string::npos);
  EXPECT_EQ(response, server.handle(
      R"({"type":"search","model":"6.6b","cluster":"dgx1-v100-ib",)"
      R"("batch":64,"method":"bf","backend":"analytic","jobs":2})"));
}

TEST(Server, ListAndPresetRequests) {
  Server server;
  const std::string models = server.handle(R"({"type":"list","what":"models"})");
  EXPECT_NE(models.find("\"models\":[\"52b\",\"6.6b\""), std::string::npos);
  EXPECT_EQ(models.find("\"clusters\""), std::string::npos);
  const std::string all = server.handle(R"({"type":"list"})");
  EXPECT_NE(all.find("\"clusters\""), std::string::npos);
  EXPECT_NE(all.find("\"scenarios\""), std::string::npos);

  const std::string preset =
      server.handle(R"({"type":"run","preset":"fig5a-bf-b16"})");
  EXPECT_NE(preset.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(preset.find("\"scenario\":\"fig5a-bf-b16\""), std::string::npos);
}

TEST(Server, CacheSizeZeroMeansEveryRequestRecomputes) {
  ServeOptions options;
  options.cache_capacity = 0;
  Server server(options);
  const std::string first = server.handle(kFig5aRun);
  const std::string second = server.handle(kFig5aRun);
  EXPECT_EQ(first, second);  // still deterministic, just recomputed
  const std::string stats = server.handle(R"({"type":"stats"})");
  EXPECT_NE(stats.find("\"hits\":0,\"misses\":2"), std::string::npos);
  EXPECT_NE(stats.find("\"capacity\":0"), std::string::npos);
}

// ---- Transports ----

TEST(Server, StdioTransportAnswersLineRequests) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("{\"id\":1,\"type\":\"ping\"}\n", in);
  std::fputs(kFig5aRun, in);
  std::fputs("\n{\"type\":\"shutdown\"}\n", in);
  std::fputs("{\"type\":\"ping\"}\n", in);  // after shutdown: unread
  std::rewind(in);

  Server server;
  EXPECT_EQ(server.serve_stdio(in, out), 0);
  EXPECT_TRUE(server.shutdown_requested());

  std::rewind(out);
  std::string output;
  char chunk[256];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), out)) > 0) {
    output.append(chunk, n);
  }
  std::fclose(in);
  std::fclose(out);
  EXPECT_EQ(output.rfind("{\"id\":1,\"ok\":true,\"type\":\"pong\"}\n", 0),
            0u);
  EXPECT_NE(output.find("\"type\":\"run\""), std::string::npos);
  EXPECT_NE(output.find("\"type\":\"shutdown\""), std::string::npos);
  // The post-shutdown ping is never read: exactly one pong in the output.
  const size_t first_pong = output.find("\"type\":\"pong\"");
  EXPECT_EQ(output.find("\"type\":\"pong\"", first_pong + 1),
            std::string::npos);
}

TEST(Server, TcpTransportServesALoopbackClient) {
  // An ephemeral-port listener; skip (not fail) where the sandbox forbids
  // binding loopback sockets.
  std::unique_ptr<net::Listener> listener;
  try {
    listener = std::make_unique<net::Listener>(0);
  } catch (const ConfigError& e) {
    GTEST_SKIP() << e.what();
  }
  const int port = listener->port();
  ASSERT_GT(port, 0);

  std::string got_ping, got_stats;
  std::thread client([&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    net::Stream stream(fd);
    ASSERT_TRUE(stream.write_all("{\"type\":\"ping\"}\n"));
    ASSERT_TRUE(stream.read_line(got_ping));
    ASSERT_TRUE(stream.write_all("{\"type\":\"stats\"}\n"));
    ASSERT_TRUE(stream.read_line(got_stats));
    ASSERT_TRUE(stream.write_all("{\"type\":\"shutdown\"}\n"));
    std::string bye;
    ASSERT_TRUE(stream.read_line(bye));
  });

  // Serve the one client on this thread (the accept loop exits once the
  // shutdown request lands).
  ServeOptions options;
  Server server(options);
  std::optional<net::Stream> stream = listener->accept();
  ASSERT_TRUE(stream.has_value());
  std::string line;
  while (!server.shutdown_requested() && stream->read_line(line)) {
    const std::string response = server.handle(line);
    if (!response.empty() && !stream->write_all(response)) break;
  }
  client.join();
  EXPECT_EQ(got_ping, "{\"ok\":true,\"type\":\"pong\"}");
  EXPECT_NE(got_stats.find("\"requests\":2"), std::string::npos);
  EXPECT_TRUE(server.shutdown_requested());
}

}  // namespace
}  // namespace bfpp::api
