// Tests for the discrete-event task-graph simulator.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/gantt.h"
#include "sim/task_graph.h"

namespace bfpp::sim {
namespace {

TEST(TaskGraph, SingleTask) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  const TaskId t = g.add_task(s, 2.5, {});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(t).start, 0.0);
  EXPECT_DOUBLE_EQ(r.time(t).end, 2.5);
  EXPECT_DOUBLE_EQ(r.makespan(), 2.5);
}

TEST(TaskGraph, StreamSerializesTasks) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  const TaskId a = g.add_task(s, 1.0, {});
  const TaskId b = g.add_task(s, 2.0, {});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(a).end, 1.0);
  EXPECT_DOUBLE_EQ(r.time(b).start, 1.0);
  EXPECT_DOUBLE_EQ(r.time(b).end, 3.0);
}

TEST(TaskGraph, ParallelStreamsOverlap) {
  TaskGraph g;
  const StreamId s0 = g.add_stream("a");
  const StreamId s1 = g.add_stream("b");
  g.add_task(s0, 3.0, {});
  g.add_task(s1, 2.0, {});
  EXPECT_DOUBLE_EQ(run(g).makespan(), 3.0);
}

TEST(TaskGraph, CrossStreamDependencyDelaysStart) {
  TaskGraph g;
  const StreamId s0 = g.add_stream("a");
  const StreamId s1 = g.add_stream("b");
  const TaskId producer = g.add_task(s0, 4.0, {});
  const TaskId consumer = g.add_task(s1, 1.0, {producer});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(consumer).start, 4.0);
  EXPECT_DOUBLE_EQ(r.makespan(), 5.0);
}

TEST(TaskGraph, InOrderStreamBlocksSuccessors) {
  // Head-of-line blocking: task b waits on a slow producer; the later
  // task c (no deps) must still wait for b because streams are in-order.
  TaskGraph g;
  const StreamId s0 = g.add_stream("producer");
  const StreamId s1 = g.add_stream("consumer");
  const TaskId slow = g.add_task(s0, 10.0, {});
  const TaskId b = g.add_task(s1, 1.0, {slow});
  const TaskId c = g.add_task(s1, 1.0, {});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(b).start, 10.0);
  EXPECT_DOUBLE_EQ(r.time(c).start, 11.0);
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g;
  const StreamId s = g.add_stream("a");
  const StreamId t = g.add_stream("b");
  const StreamId u = g.add_stream("c");
  const TaskId root = g.add_task(s, 1.0, {});
  const TaskId left = g.add_task(t, 2.0, {root});
  const TaskId right = g.add_task(u, 5.0, {root});
  const TaskId sink = g.add_task(s, 1.0, {left, right});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(sink).start, 6.0);
  EXPECT_DOUBLE_EQ(r.makespan(), 7.0);
}

TEST(TaskGraph, ZeroDurationTasks) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  const TaskId a = g.add_task(s, 0.0, {});
  const TaskId b = g.add_task(s, 0.0, {a});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(b).end, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan(), 0.0);
}

TEST(TaskGraph, ReservedTaskForwardDependency) {
  // A task may depend on a reserved (not yet defined) future task.
  TaskGraph g;
  const StreamId s0 = g.add_stream("a");
  const StreamId s1 = g.add_stream("b");
  const TaskId future = g.reserve_task();
  const TaskId waiter = g.add_task(s0, 1.0, {future});
  g.define_task(future, s1, 3.0, {});
  const SimResult r = run(g);
  EXPECT_DOUBLE_EQ(r.time(waiter).start, 3.0);
}

TEST(TaskGraph, UndefinedReservedTaskRejected) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  const TaskId future = g.reserve_task();
  g.add_task(s, 1.0, {future});
  EXPECT_THROW(run(g), Error);
}

TEST(TaskGraph, DeadlockDetected) {
  // Two devices that both recv-before-send: a genuine schedule deadlock.
  TaskGraph g;
  const StreamId s0 = g.add_stream("dev0");
  const StreamId s1 = g.add_stream("dev1");
  const TaskId send0 = g.reserve_task();
  const TaskId send1 = g.reserve_task();
  g.define_task(send0, s0, 1.0, {send1});  // dev0 sends after dev1's send
  g.define_task(send1, s1, 1.0, {send0});  // dev1 sends after dev0's send
  EXPECT_THROW(run(g), Error);
}

TEST(TaskGraph, DeadlockViaStreamOrder) {
  // The cycle goes through implicit in-stream ordering, not only deps.
  TaskGraph g;
  const StreamId s0 = g.add_stream("dev0");
  const StreamId s1 = g.add_stream("dev1");
  const TaskId recv0 = g.reserve_task();
  const TaskId send1 = g.reserve_task();
  g.define_task(recv0, s0, 1.0, {send1});     // dev0 blocks on dev1's send
  const TaskId send0 = g.add_task(s0, 1.0, {});  // queued behind recv0
  g.define_task(send1, s1, 1.0, {send0});     // dev1 waits on dev0's send
  EXPECT_THROW(run(g), Error);
}

TEST(TaskGraph, StreamStatsBusyAndIdle) {
  TaskGraph g;
  const StreamId s0 = g.add_stream("a");
  const StreamId s1 = g.add_stream("b");
  const TaskId gap = g.add_task(s0, 4.0, {});
  g.add_task(s1, 1.0, {});
  g.add_task(s1, 1.0, {gap});
  const SimResult r = run(g);
  const StreamStats& st = r.stream(s1);
  EXPECT_DOUBLE_EQ(st.busy, 2.0);
  EXPECT_DOUBLE_EQ(st.first_start, 0.0);
  EXPECT_DOUBLE_EQ(st.last_end, 5.0);
  EXPECT_DOUBLE_EQ(st.idle_within_span(), 3.0);
}

TEST(TaskGraph, NegativeDurationRejected) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  EXPECT_THROW(g.add_task(s, -1.0, {}), Error);
}

TEST(TaskGraph, InvalidDependencyRejected) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  EXPECT_THROW(g.add_task(s, 1.0, {42}), Error);
}

TEST(TaskGraph, DoubleDefineRejected) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  const TaskId t = g.reserve_task();
  g.define_task(t, s, 1.0, {});
  EXPECT_THROW(g.define_task(t, s, 1.0, {}), Error);
}

TEST(TaskGraph, LargeChainIsLinear) {
  TaskGraph g;
  const StreamId s = g.add_stream("s");
  TaskId prev = g.add_task(s, 1.0, {});
  for (int i = 0; i < 9999; ++i) prev = g.add_task(s, 1.0, {prev});
  EXPECT_DOUBLE_EQ(run(g).makespan(), 10000.0);
}

TEST(Gantt, RendersRowsToScale) {
  TaskGraph g;
  const StreamId s = g.add_stream("gpu0");
  g.add_task(s, 1.0, {}, {"f0", TaskKind::kForward, 0, 0});
  g.add_task(s, 1.0, {}, {"b0", TaskKind::kBackward, 0, 0});
  const SimResult r = run(g);
  GanttOptions opt;
  opt.width = 10;
  const std::string chart = render_gantt(g, r, {s}, opt);
  EXPECT_NE(chart.find("gpu0 |00000aaaaa|"), std::string::npos);
}

TEST(Gantt, IdleShownAsDots) {
  TaskGraph g;
  const StreamId s0 = g.add_stream("a");
  const StreamId s1 = g.add_stream("b");
  const TaskId slow = g.add_task(s0, 4.0, {}, {"w", TaskKind::kForward, 0, 1});
  g.add_task(s1, 4.0, {slow}, {"x", TaskKind::kBackward, 0, 2});
  const SimResult r = run(g);
  GanttOptions opt;
  opt.width = 8;
  opt.show_legend = false;
  const std::string chart = render_gantt(g, r, {s0, s1}, opt);
  EXPECT_NE(chart.find("a |1111....|"), std::string::npos);
  EXPECT_NE(chart.find("b |....cccc|"), std::string::npos);
}

}  // namespace
}  // namespace bfpp::sim
