// Differential harness for the simulator hot-path rework: a seeded
// scenario corpus runs through both the arena/SoA simulator
// (runtime::PipelineSim) and the frozen pre-rework implementation
// (runtime::legacy::PipelineSim), asserting bit-identical results at
// every level - task times, rendered timelines, RunResult and the full
// api::Report wire form. Also pins the SimCache memoized and
// incremental re-simulation paths to the cold path.
//
// The legacy simulator exists only to back this harness and the
// sim_hotpath bench; both it and this file are scheduled for deletion
// one release after the rework lands.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/api.h"
#include "common/error.h"
#include "common/rng.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "parallel/config.h"
#include "runtime/legacy_pipeline_sim.h"
#include "runtime/pipeline_sim.h"
#include "sim/gantt.h"
#include "sim/legacy_task_graph.h"

namespace bfpp::runtime {
namespace {

using parallel::DpSharding;
using parallel::ParallelConfig;
using parallel::ScheduleKind;

struct Scenario {
  model::TransformerSpec spec;
  ParallelConfig cfg;
  hw::ClusterSpec cluster;
  std::string tag;  // for failure messages
};

// Outcome of running one simulator: either a result bundle or the
// thrown error's message (exceptions must match across implementations
// too - same type of rejection, same diagnostic).
struct Outcome {
  bool ok = false;
  std::string error;
  RunResult result;
  std::string gantt;
  int task_count = 0;
  std::vector<std::string> labels;
  std::vector<sim::TaskTime> times;
};

Outcome run_legacy(const Scenario& sc) {
  Outcome out;
  try {
    legacy::PipelineSim sim(sc.spec, sc.cfg, sc.cluster);
    out.result = sim.run();
    out.gantt = sim::render_gantt(sim.graph(), sim.result(),
                                  sim.display_streams());
    out.task_count = sim.graph().task_count();
    for (int t = 0; t < out.task_count; ++t) {
      out.labels.push_back(sim.graph().meta(t).label);
      out.times.push_back(sim.result().time(t));
    }
    out.ok = true;
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

Outcome run_arena(const Scenario& sc, std::shared_ptr<SimCache> cache = {}) {
  Outcome out;
  try {
    PipelineSim sim(sc.spec, sc.cfg, sc.cluster, {}, std::move(cache));
    out.result = sim.run();
    out.gantt = sim::render_gantt(sim.graph(), sim.result(),
                                  sim.display_streams());
    out.task_count = sim.graph().task_count();
    for (int t = 0; t < out.task_count; ++t) {
      out.labels.push_back(sim.graph().label(t));
      out.times.push_back(sim.result().time(t));
    }
    out.ok = true;
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

// Full-depth comparison of two outcomes; returns true when the scenario
// simulated cleanly on both (for corpus coverage accounting).
bool expect_identical(const Outcome& legacy, const Outcome& arena,
                      const std::string& tag) {
  EXPECT_EQ(legacy.ok, arena.ok) << tag << ": legacy said '" << legacy.error
                                 << "', arena said '" << arena.error << "'";
  if (!legacy.ok || !arena.ok) {
    EXPECT_EQ(legacy.error, arena.error) << tag;
    return false;
  }
  // RunResult: exact double equality, not approximate - the rework is
  // semantics-preserving by construction.
  EXPECT_EQ(legacy.result.batch_time, arena.result.batch_time) << tag;
  EXPECT_EQ(legacy.result.throughput_per_gpu, arena.result.throughput_per_gpu)
      << tag;
  EXPECT_EQ(legacy.result.utilization, arena.result.utilization) << tag;
  EXPECT_EQ(legacy.result.compute_idle_fraction,
            arena.result.compute_idle_fraction)
      << tag;
  // Structure: same tasks in the same id order with the same labels
  // (exercises every synthesized-label pattern) and the same times.
  EXPECT_EQ(legacy.task_count, arena.task_count) << tag;
  if (legacy.task_count != arena.task_count) return false;
  for (int t = 0; t < legacy.task_count; ++t) {
    const auto u = static_cast<size_t>(t);
    EXPECT_EQ(legacy.labels[u], arena.labels[u]) << tag << " task " << t;
    EXPECT_EQ(legacy.times[u].start, arena.times[u].start)
        << tag << " task " << t << " (" << legacy.labels[u] << ")";
    EXPECT_EQ(legacy.times[u].end, arena.times[u].end)
        << tag << " task " << t;
    if (legacy.labels[u] != arena.labels[u] ||
        legacy.times[u].start != arena.times[u].start ||
        legacy.times[u].end != arena.times[u].end) {
      return false;  // one divergent task is enough detail per scenario
    }
  }
  // Rendered timeline: both graphs flow through the same render_gantt
  // template, so the charts must match character for character.
  EXPECT_EQ(legacy.gantt, arena.gantt) << tag;
  return true;
}

// Seeded corpus: random (family x grid x micro-batching x sharding x
// overlap) points, including non-power-of-two pipelines. Infeasible
// points stay in the corpus - both implementations must reject them
// with the same diagnostic.
std::vector<Scenario> corpus(uint64_t seed, int n) {
  struct Grid {
    int pp, tp, dp, nodes;
  };
  static const Grid kGrids[] = {
      {8, 8, 1, 8}, {4, 2, 8, 8}, {2, 4, 8, 8}, {4, 4, 4, 8},
      {2, 2, 16, 8}, {8, 2, 4, 8}, {1, 8, 8, 8}, {3, 8, 1, 3},
      {5, 4, 2, 5}, {6, 4, 1, 3},
  };
  static const ScheduleKind kKinds[] = {
      ScheduleKind::kGpipe,        ScheduleKind::kOneFOneB,
      ScheduleKind::kDepthFirst,   ScheduleKind::kBreadthFirst,
      ScheduleKind::kOneFOneBAsync, ScheduleKind::kUnbalanced,
      ScheduleKind::kVSchedule,    ScheduleKind::kTwoBP,
  };
  Rng rng(seed);
  std::vector<Scenario> out;
  for (int i = 0; i < n; ++i) {
    const Grid& g = kGrids[rng.uniform_index(std::size(kGrids))];
    const ScheduleKind kind = kKinds[rng.uniform_index(std::size(kKinds))];
    Scenario sc;
    sc.spec = rng.uniform() < 0.2 ? model::model_52b() : model::model_6_6b();
    sc.cluster = rng.uniform() < 0.5 ? hw::dgx1_v100_infiniband(g.nodes)
                                     : hw::dgx1_v100_ethernet(g.nodes);
    ParallelConfig& cfg = sc.cfg;
    cfg.n_pp = g.pp;
    cfg.n_tp = g.tp;
    cfg.n_dp = g.dp;
    cfg.schedule = kind;
    switch (kind) {
      case ScheduleKind::kBreadthFirst:
        cfg.n_loop = 1 << rng.uniform_index(3);  // 1, 2 or 4
        break;
      case ScheduleKind::kDepthFirst:
        cfg.n_loop = 1 << rng.uniform_index(3);
        break;
      case ScheduleKind::kVSchedule:
        cfg.n_loop = 2;
        break;
      default:
        cfg.n_loop = 1;
        break;
    }
    cfg.n_mb = kind == ScheduleKind::kDepthFirst
                   ? g.pp * static_cast<int>(1 + rng.uniform_index(4))
                   : 2 << rng.uniform_index(3);  // 2, 4 or 8
    cfg.s_mb = 1 + static_cast<int>(rng.uniform_index(2));
    const DpSharding shardings[] = {DpSharding::kNone, DpSharding::kPartial,
                                    DpSharding::kFull};
    cfg.sharding = shardings[rng.uniform_index(3)];
    cfg.overlap_pp = rng.uniform() < 0.7;
    cfg.overlap_dp = cfg.sharding == DpSharding::kFull || rng.uniform() < 0.7;
    sc.tag = "seed " + std::to_string(seed) + " #" + std::to_string(i) + ": " +
             cfg.describe();
    out.push_back(std::move(sc));
  }
  return out;
}

TEST(SimDiff, SeededCorpusIsByteIdentical) {
  int clean = 0;
  for (const Scenario& sc : corpus(/*seed=*/0xbf2023, /*n=*/96)) {
    if (expect_identical(run_legacy(sc), run_arena(sc), sc.tag)) ++clean;
  }
  // The corpus must actually exercise the simulator, not just the
  // validators - require a healthy feasible share (~40% of the points
  // survive the structural checks at this seed).
  EXPECT_GE(clean, 32);
}

TEST(SimDiff, CachedPathsMatchColdPath) {
  // One shared cache across four cells: exact repeat (full hit),
  // batch-size neighbor (cost-table hit, new topology) and
  // micro-batch-split neighbor (skeleton clone + re-time). Every cached
  // evaluation must be bit-identical to a cold, cache-less one.
  Scenario base;
  base.spec = model::model_6_6b();
  base.cluster = hw::dgx1_v100_infiniband();
  base.cfg.n_pp = 4;
  base.cfg.n_tp = 2;
  base.cfg.n_dp = 8;
  base.cfg.s_mb = 1;
  base.cfg.n_mb = 8;
  base.cfg.n_loop = 4;
  base.cfg.schedule = ScheduleKind::kBreadthFirst;
  base.tag = "cache base";

  Scenario batch_neighbor = base;  // different N_mb, same S_mb
  batch_neighbor.cfg.n_mb = 16;
  batch_neighbor.tag = "cache batch-neighbor";
  Scenario split_neighbor = base;  // different S_mb, same N_mb
  split_neighbor.cfg.s_mb = 2;
  split_neighbor.tag = "cache split-neighbor";

  auto cache = std::make_shared<SimCache>();
  EXPECT_TRUE(expect_identical(run_legacy(base), run_arena(base, cache),
                               base.tag));
  auto stats = cache->stats();
  EXPECT_EQ(stats.cost_misses, 1);
  EXPECT_EQ(stats.skeleton_misses, 1);

  // Exact repeat: both lookups hit.
  EXPECT_TRUE(expect_identical(run_legacy(base), run_arena(base, cache),
                               "cache repeat"));
  stats = cache->stats();
  EXPECT_EQ(stats.cost_hits, 1);
  EXPECT_EQ(stats.skeleton_hits, 1);

  // Batch-size neighbor: same model x cluster costs, new topology.
  EXPECT_TRUE(expect_identical(run_legacy(batch_neighbor),
                               run_arena(batch_neighbor, cache),
                               batch_neighbor.tag));
  stats = cache->stats();
  EXPECT_EQ(stats.cost_hits, 2);
  EXPECT_EQ(stats.skeleton_misses, 2);

  // Micro-batch-split neighbor: cached skeleton cloned and re-timed
  // through the CostRefs (the incremental re-simulation path).
  EXPECT_TRUE(expect_identical(run_legacy(split_neighbor),
                               run_arena(split_neighbor, cache),
                               split_neighbor.tag));
  stats = cache->stats();
  EXPECT_EQ(stats.skeleton_hits, 2);
  EXPECT_EQ(stats.cost_misses, 2);
}

TEST(SimDiff, ReportsAreByteIdenticalAcrossEngines) {
  // The acceptance-level check: whole api::Reports (JSON and wire form)
  // from the arena engine match the legacy engine byte for byte.
  const auto legacy_engine = api::make_legacy_simulator_engine_for_tests();
  const auto arena_engine = api::make_engine();
  int compared = 0;
  for (const Scenario& sc : corpus(/*seed=*/0x51fd1ff, /*n=*/12)) {
    std::optional<api::Scenario> scenario;
    try {
      scenario = api::ScenarioBuilder()
                     .name(sc.tag)
                     .model(sc.spec)
                     .cluster(sc.cluster)
                     .config(sc.cfg)
                     .build();
    } catch (const ConfigError&) {
      continue;  // structurally invalid corpus point; neither engine runs
    }
    const std::optional<api::Report> a =
        api::try_run_with(*scenario, *legacy_engine);
    const std::optional<api::Report> b =
        api::try_run_with(*scenario, *arena_engine);
    ASSERT_EQ(a.has_value(), b.has_value()) << sc.tag;
    if (!a) continue;
    EXPECT_EQ(a->to_wire(), b->to_wire()) << sc.tag;
    EXPECT_EQ(a->to_json(), b->to_json()) << sc.tag;
    EXPECT_EQ(a->to_csv_row(), b->to_csv_row()) << sc.tag;
    ++compared;
  }
  EXPECT_GE(compared, 4);  // the corpus must yield real comparisons
}

}  // namespace
}  // namespace bfpp::runtime
