// Differential harness for the simulator hot path, retargeted at a
// golden corpus now that the frozen pre-rework simulator is gone.
//
// A seeded scenario corpus (random family x grid x micro-batching x
// sharding x overlap points, including infeasible ones) runs through
// the arena/SoA simulator (runtime::PipelineSim) and every observable
// - task labels and times, the rendered timeline, RunResult doubles
// (hexfloat, so bit-exact) and the full api::Report wire form - is
// condensed into one digest line per scenario and byte-compared
// against tests/golden/. The goldens were recorded while the frozen
// legacy simulator still existed, under the old harness's assertion
// that both implementations agree byte-for-byte, so they carry the
// pre-rework semantics forward. Any change to costs, schedules or the
// simulator shows up as a reviewable one-line-per-scenario diff that
// has to be re-recorded deliberately (BFPP_UPDATE_GOLDEN=1, see
// golden_util.h).
//
// The SimCache memoized and incremental re-simulation paths are still
// pinned differentially - against a cold, cache-less run of the same
// cell, which is the equality the cache actually promises.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/api.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "golden_util.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "parallel/config.h"
#include "runtime/pipeline_sim.h"
#include "sim/gantt.h"

namespace bfpp::runtime {
namespace {

using parallel::DpSharding;
using parallel::ParallelConfig;
using parallel::ScheduleKind;

struct Scenario {
  model::TransformerSpec spec;
  ParallelConfig cfg;
  hw::ClusterSpec cluster;
  std::string tag;  // for failure messages
};

// Outcome of running the simulator on one scenario: either a result
// bundle or the thrown error's message (rejections are part of the
// pinned surface too - same diagnostic, forever).
struct Outcome {
  bool ok = false;
  std::string error;
  RunResult result;
  std::string gantt;
  int task_count = 0;
  std::vector<std::string> labels;
  std::vector<sim::TaskTime> times;
};

Outcome run_arena(const Scenario& sc, std::shared_ptr<SimCache> cache = {}) {
  Outcome out;
  try {
    PipelineSim sim(sc.spec, sc.cfg, sc.cluster, {}, std::move(cache));
    out.result = sim.run();
    out.gantt = sim::render_gantt(sim.graph(), sim.result(),
                                  sim.display_streams());
    out.task_count = sim.graph().task_count();
    for (int t = 0; t < out.task_count; ++t) {
      out.labels.push_back(sim.graph().label(t));
      out.times.push_back(sim.result().time(t));
    }
    out.ok = true;
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

// Full-depth comparison of two outcomes; returns true when the scenario
// simulated cleanly on both (for corpus coverage accounting).
bool expect_identical(const Outcome& cold, const Outcome& cached,
                      const std::string& tag) {
  EXPECT_EQ(cold.ok, cached.ok) << tag << ": cold said '" << cold.error
                                << "', cached said '" << cached.error << "'";
  if (!cold.ok || !cached.ok) {
    EXPECT_EQ(cold.error, cached.error) << tag;
    return false;
  }
  // RunResult: exact double equality, not approximate - the cached
  // paths are semantics-preserving by construction.
  EXPECT_EQ(cold.result.batch_time, cached.result.batch_time) << tag;
  EXPECT_EQ(cold.result.throughput_per_gpu, cached.result.throughput_per_gpu)
      << tag;
  EXPECT_EQ(cold.result.utilization, cached.result.utilization) << tag;
  EXPECT_EQ(cold.result.compute_idle_fraction,
            cached.result.compute_idle_fraction)
      << tag;
  // Structure: same tasks in the same id order with the same labels
  // (exercises every synthesized-label pattern) and the same times.
  EXPECT_EQ(cold.task_count, cached.task_count) << tag;
  if (cold.task_count != cached.task_count) return false;
  for (int t = 0; t < cold.task_count; ++t) {
    const auto u = static_cast<size_t>(t);
    EXPECT_EQ(cold.labels[u], cached.labels[u]) << tag << " task " << t;
    EXPECT_EQ(cold.times[u].start, cached.times[u].start)
        << tag << " task " << t << " (" << cold.labels[u] << ")";
    EXPECT_EQ(cold.times[u].end, cached.times[u].end) << tag << " task " << t;
    if (cold.labels[u] != cached.labels[u] ||
        cold.times[u].start != cached.times[u].start ||
        cold.times[u].end != cached.times[u].end) {
      return false;  // one divergent task is enough detail per scenario
    }
  }
  // Rendered timeline must match character for character.
  EXPECT_EQ(cold.gantt, cached.gantt) << tag;
  return true;
}

// FNV-1a over the per-task detail + rendered timeline. The golden file
// stores one digest line per scenario instead of every task time, so a
// 96-scenario corpus stays reviewable; hexfloat headline doubles in
// the same line localize *what* moved when the digest does.
uint64_t fnv1a(uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string record(int index, const Outcome& out, const std::string& tag) {
  if (!out.ok) {
    return str_format("#%02d rejected \"%s\"  %s\n", index, out.error.c_str(),
                      tag.c_str());
  }
  uint64_t digest = 14695981039346656037ull;
  for (int t = 0; t < out.task_count; ++t) {
    const auto u = static_cast<size_t>(t);
    digest = fnv1a(digest, out.labels[u]);
    digest = fnv1a(digest, str_format("|%a|%a\n", out.times[u].start,
                                      out.times[u].end));
  }
  digest = fnv1a(digest, out.gantt);
  return str_format("#%02d ok tasks=%d batch=%a util=%a digest=%016llx  %s\n",
                    index, out.task_count, out.result.batch_time,
                    out.result.utilization,
                    static_cast<unsigned long long>(digest), tag.c_str());
}

// Seeded corpus: random (family x grid x micro-batching x sharding x
// overlap) points, including non-power-of-two pipelines. Infeasible
// points stay in the corpus - the rejection diagnostic is pinned too.
std::vector<Scenario> corpus(uint64_t seed, int n) {
  struct Grid {
    int pp, tp, dp, nodes;
  };
  static const Grid kGrids[] = {
      {8, 8, 1, 8}, {4, 2, 8, 8}, {2, 4, 8, 8}, {4, 4, 4, 8},
      {2, 2, 16, 8}, {8, 2, 4, 8}, {1, 8, 8, 8}, {3, 8, 1, 3},
      {5, 4, 2, 5}, {6, 4, 1, 3},
  };
  static const ScheduleKind kKinds[] = {
      ScheduleKind::kGpipe,        ScheduleKind::kOneFOneB,
      ScheduleKind::kDepthFirst,   ScheduleKind::kBreadthFirst,
      ScheduleKind::kOneFOneBAsync, ScheduleKind::kUnbalanced,
      ScheduleKind::kVSchedule,    ScheduleKind::kTwoBP,
  };
  Rng rng(seed);
  std::vector<Scenario> out;
  for (int i = 0; i < n; ++i) {
    const Grid& g = kGrids[rng.uniform_index(std::size(kGrids))];
    const ScheduleKind kind = kKinds[rng.uniform_index(std::size(kKinds))];
    Scenario sc;
    sc.spec = rng.uniform() < 0.2 ? model::model_52b() : model::model_6_6b();
    sc.cluster = rng.uniform() < 0.5 ? hw::dgx1_v100_infiniband(g.nodes)
                                     : hw::dgx1_v100_ethernet(g.nodes);
    ParallelConfig& cfg = sc.cfg;
    cfg.n_pp = g.pp;
    cfg.n_tp = g.tp;
    cfg.n_dp = g.dp;
    cfg.schedule = kind;
    switch (kind) {
      case ScheduleKind::kBreadthFirst:
        cfg.n_loop = 1 << rng.uniform_index(3);  // 1, 2 or 4
        break;
      case ScheduleKind::kDepthFirst:
        cfg.n_loop = 1 << rng.uniform_index(3);
        break;
      case ScheduleKind::kVSchedule:
        cfg.n_loop = 2;
        break;
      default:
        cfg.n_loop = 1;
        break;
    }
    cfg.n_mb = kind == ScheduleKind::kDepthFirst
                   ? g.pp * static_cast<int>(1 + rng.uniform_index(4))
                   : 2 << rng.uniform_index(3);  // 2, 4 or 8
    cfg.s_mb = 1 + static_cast<int>(rng.uniform_index(2));
    const DpSharding shardings[] = {DpSharding::kNone, DpSharding::kPartial,
                                    DpSharding::kFull};
    cfg.sharding = shardings[rng.uniform_index(3)];
    cfg.overlap_pp = rng.uniform() < 0.7;
    cfg.overlap_dp = cfg.sharding == DpSharding::kFull || rng.uniform() < 0.7;
    sc.tag = "seed " + std::to_string(seed) + " #" + std::to_string(i) + ": " +
             cfg.describe();
    out.push_back(std::move(sc));
  }
  return out;
}

TEST(SimDiff, SeededCorpusMatchesGolden) {
  // Same seed and size as the original legacy-vs-arena harness, so the
  // golden file pins exactly the corpus the rework was proven on.
  std::string blob;
  int clean = 0;
  int index = 0;
  for (const Scenario& sc : corpus(/*seed=*/0xbf2023, /*n=*/96)) {
    const Outcome out = run_arena(sc);
    if (out.ok) ++clean;
    blob += record(index++, out, sc.tag);
  }
  // The corpus must actually exercise the simulator, not just the
  // validators - require a healthy feasible share (~40% of the points
  // survive the structural checks at this seed). Checked before the
  // golden diff so a degenerate corpus cannot be "recorded over".
  EXPECT_GE(clean, 32);
  bfpp::testing::check_golden("sim_corpus.txt", blob);
}

TEST(SimDiff, CachedPathsMatchColdPath) {
  // One shared cache across four cells: exact repeat (full hit),
  // batch-size neighbor (cost-table hit, new topology) and
  // micro-batch-split neighbor (skeleton clone + re-time). Every cached
  // evaluation must be bit-identical to a cold, cache-less one.
  Scenario base;
  base.spec = model::model_6_6b();
  base.cluster = hw::dgx1_v100_infiniband();
  base.cfg.n_pp = 4;
  base.cfg.n_tp = 2;
  base.cfg.n_dp = 8;
  base.cfg.s_mb = 1;
  base.cfg.n_mb = 8;
  base.cfg.n_loop = 4;
  base.cfg.schedule = ScheduleKind::kBreadthFirst;
  base.tag = "cache base";

  Scenario batch_neighbor = base;  // different N_mb, same S_mb
  batch_neighbor.cfg.n_mb = 16;
  batch_neighbor.tag = "cache batch-neighbor";
  Scenario split_neighbor = base;  // different S_mb, same N_mb
  split_neighbor.cfg.s_mb = 2;
  split_neighbor.tag = "cache split-neighbor";

  auto cache = std::make_shared<SimCache>();
  EXPECT_TRUE(expect_identical(run_arena(base), run_arena(base, cache),
                               base.tag));
  auto stats = cache->stats();
  EXPECT_EQ(stats.cost_misses, 1);
  EXPECT_EQ(stats.skeleton_misses, 1);

  // Exact repeat: both lookups hit.
  EXPECT_TRUE(expect_identical(run_arena(base), run_arena(base, cache),
                               "cache repeat"));
  stats = cache->stats();
  EXPECT_EQ(stats.cost_hits, 1);
  EXPECT_EQ(stats.skeleton_hits, 1);

  // Batch-size neighbor: same model x cluster costs, new topology.
  EXPECT_TRUE(expect_identical(run_arena(batch_neighbor),
                               run_arena(batch_neighbor, cache),
                               batch_neighbor.tag));
  stats = cache->stats();
  EXPECT_EQ(stats.cost_hits, 2);
  EXPECT_EQ(stats.skeleton_misses, 2);

  // Micro-batch-split neighbor: cached skeleton cloned and re-timed
  // through the CostRefs (the incremental re-simulation path).
  EXPECT_TRUE(expect_identical(run_arena(split_neighbor),
                               run_arena(split_neighbor, cache),
                               split_neighbor.tag));
  stats = cache->stats();
  EXPECT_EQ(stats.skeleton_hits, 2);
  EXPECT_EQ(stats.cost_misses, 2);
}

TEST(SimDiff, ReportsMatchGoldenWireForms) {
  // The acceptance-level check: whole api::Reports from the default
  // engine, in wire form (the full field surface, see the bfpp-lint
  // wire-stability pass), byte-compared against the recorded corpus.
  const auto engine = api::make_engine();
  std::string blob;
  int compared = 0;
  for (const Scenario& sc : corpus(/*seed=*/0x51fd1ff, /*n=*/12)) {
    std::optional<api::Scenario> scenario;
    try {
      scenario = api::ScenarioBuilder()
                     .name(sc.tag)
                     .model(sc.spec)
                     .cluster(sc.cluster)
                     .config(sc.cfg)
                     .build();
    } catch (const ConfigError&) {
      continue;  // structurally invalid corpus point; the engine never runs
    }
    const std::optional<api::Report> report =
        api::try_run_with(*scenario, *engine);
    if (!report) continue;
    blob += report->to_wire();
    blob += "\n";
    ++compared;
  }
  EXPECT_GE(compared, 4);  // the corpus must yield real comparisons
  bfpp::testing::check_golden("sim_reports.wire.txt", blob);
}

}  // namespace
}  // namespace bfpp::runtime
