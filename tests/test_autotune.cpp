// Tests for the configuration grid search (Appendix E).
#include <gtest/gtest.h>

#include "autotune/autotune.h"
#include "common/error.h"
#include "hw/cluster.h"
#include "model/transformer.h"

namespace bfpp::autotune {
namespace {

using parallel::DpSharding;
using parallel::ScheduleKind;

TEST(Enumerate, NoPipelineHasOnlySingleStageDevices) {
  const auto configs = enumerate_configs(
      model::model_52b(), hw::dgx1_v100_infiniband(), Method::kNoPipeline, 64);
  ASSERT_FALSE(configs.empty());
  for (const auto& cfg : configs) {
    EXPECT_EQ(cfg.n_pp, 1);
    EXPECT_EQ(cfg.schedule, ScheduleKind::kBreadthFirst);
  }
}

TEST(Enumerate, DepthFirstIsMegatronFlagged) {
  const auto configs = enumerate_configs(
      model::model_52b(), hw::dgx1_v100_infiniband(), Method::kDepthFirst, 64);
  ASSERT_FALSE(configs.empty());
  for (const auto& cfg : configs) {
    EXPECT_FALSE(cfg.overlap_dp);
    EXPECT_FALSE(cfg.overlap_pp);
    EXPECT_EQ(cfg.sharding, DpSharding::kNone);
    EXPECT_GE(cfg.n_loop, 2);
    EXPECT_EQ(cfg.n_mb % cfg.n_pp, 0);
  }
}

TEST(Enumerate, NonLoopedIncludesBothImplementations) {
  const auto configs = enumerate_configs(
      model::model_52b(), hw::dgx1_v100_infiniband(), Method::kNonLooped, 64);
  bool saw_ours = false, saw_megatron = false;
  for (const auto& cfg : configs) {
    EXPECT_EQ(cfg.n_loop, 1);
    if (cfg.schedule == ScheduleKind::kGpipe && cfg.overlap_pp) saw_ours = true;
    if (cfg.schedule == ScheduleKind::kOneFOneB && !cfg.overlap_pp)
      saw_megatron = true;
  }
  EXPECT_TRUE(saw_ours);
  EXPECT_TRUE(saw_megatron);
}

TEST(Enumerate, RespectsBatchFactorization) {
  // Every candidate must realize exactly the requested global batch.
  for (int batch : {9, 24, 64}) {
    for (const auto& cfg :
         enumerate_configs(model::model_52b(), hw::dgx1_v100_infiniband(),
                           Method::kBreadthFirst, batch)) {
      EXPECT_EQ(cfg.batch_size(), batch);
      EXPECT_EQ(cfg.n_gpus(), 64);
    }
  }
}

TEST(Enumerate, OddBatchStillSearchable) {
  // B = 9 (the paper's "one extra micro-batch" configuration) forces
  // N_DP = 1 grids only.
  const auto configs = enumerate_configs(
      model::model_52b(), hw::dgx1_v100_infiniband(), Method::kBreadthFirst, 9);
  ASSERT_FALSE(configs.empty());
  for (const auto& cfg : configs) EXPECT_EQ(cfg.n_dp, 1);
}

TEST(FindBest, ReturnsFeasibleBest) {
  const auto result = find_best(model::model_52b(), hw::dgx1_v100_infiniband(),
                                Method::kBreadthFirst, 16);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GT(result.evaluated, 0);
  EXPECT_GT(result.best->result.utilization, 0.2);
  // The memory estimates accompany the candidate (Appendix E columns).
  EXPECT_GT(result.best->memory.total(), 0.0);
  EXPECT_LE(result.best->memory_min.total(), result.best->memory.total());
}

TEST(FindBest, BreadthFirstWinsAtSmallBatch52B) {
  // The paper's headline: near beta_min breadth-first beats all three
  // baselines (Figure 7a, B = 8-16).
  const auto spec = model::model_52b();
  const auto cluster = hw::dgx1_v100_infiniband();
  const auto bf = find_best(spec, cluster, Method::kBreadthFirst, 16);
  const auto df = find_best(spec, cluster, Method::kDepthFirst, 16);
  const auto nl = find_best(spec, cluster, Method::kNonLooped, 16);
  ASSERT_TRUE(bf.best && df.best && nl.best);
  EXPECT_GT(bf.best->result.throughput_per_gpu,
            df.best->result.throughput_per_gpu);
  EXPECT_GT(bf.best->result.throughput_per_gpu,
            nl.best->result.throughput_per_gpu);
}

TEST(FindBest, NoPipelineCollapsesAtTinyBatch) {
  // Figure 7a: the 2d approach is far below breadth-first at B = 8
  // (beta = 1/8); it is wire-bound.
  const auto spec = model::model_52b();
  const auto cluster = hw::dgx1_v100_infiniband();
  const auto np = find_best(spec, cluster, Method::kNoPipeline, 8);
  const auto bf = find_best(spec, cluster, Method::kBreadthFirst, 8);
  ASSERT_TRUE(np.best && bf.best);
  EXPECT_LT(np.best->result.utilization, 0.2);
  EXPECT_GT(bf.best->result.utilization, 2.0 * np.best->result.utilization);
}

TEST(FindBest, CountsInfeasibleConfigs) {
  // At a large batch many GPipe-style configs run out of memory; the
  // search must prune them rather than fail.
  const auto result = find_best(model::model_52b(), hw::dgx1_v100_infiniband(),
                                Method::kNonLooped, 512);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GT(result.infeasible, 0);
}

TEST(FindBest, EthernetPrefersLessDataParallelism) {
  // On Ethernet the DP collectives are ~8x slower; the best 6.6B config
  // should use a smaller N_DP (more model parallelism) than on
  // InfiniBand, or at least not be faster.
  const auto spec = model::model_6_6b();
  const auto ib = find_best(spec, hw::dgx1_v100_infiniband(),
                            Method::kBreadthFirst, 128);
  const auto eth = find_best(spec, hw::dgx1_v100_ethernet(),
                             Method::kBreadthFirst, 128);
  ASSERT_TRUE(ib.best && eth.best);
  EXPECT_GT(ib.best->result.utilization, eth.best->result.utilization);
}

TEST(FindBest, ParallelEvaluationIsDeterministic) {
  // Candidates evaluate on the shared pool into index-addressed slots;
  // the reduced result must be identical for every jobs value, including
  // tie-breaks and the infeasible/evaluated counters.
  const auto spec = model::model_6_6b();
  const auto cluster = hw::dgx1_v100_infiniband();
  SearchOptions serial;
  serial.jobs = 1;
  SearchOptions wide;
  wide.jobs = 8;
  const auto a = find_best(spec, cluster, Method::kBreadthFirst, 64, serial);
  const auto b = find_best(spec, cluster, Method::kBreadthFirst, 64, wide);
  ASSERT_TRUE(a.best && b.best);
  EXPECT_EQ(a.best->config, b.best->config);
  EXPECT_DOUBLE_EQ(a.best->result.throughput_per_gpu,
                   b.best->result.throughput_per_gpu);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.infeasible, b.infeasible);
  ASSERT_EQ(a.frugal.has_value(), b.frugal.has_value());
  if (a.frugal) EXPECT_EQ(a.frugal->config, b.frugal->config);
}

TEST(FindBest, CustomEvaluatorDrivesTheSearch) {
  // An evaluator that prefers small N_TP must decide the winner; one
  // that always rejects must leave best empty and count everything
  // infeasible.
  SearchOptions options;
  options.jobs = 2;
  options.evaluate = [](const model::TransformerSpec&,
                        const parallel::ParallelConfig& cfg,
                        const hw::ClusterSpec&) {
    runtime::RunResult result;
    result.throughput_per_gpu = 1.0 / cfg.n_tp;
    return result;
  };
  const auto spec = model::model_6_6b();
  const auto cluster = hw::dgx1_v100_infiniband();
  const auto best =
      find_best(spec, cluster, Method::kBreadthFirst, 64, options);
  ASSERT_TRUE(best.best.has_value());
  EXPECT_EQ(best.best->config.n_tp, 1);
  EXPECT_EQ(best.infeasible, 0);

  options.evaluate = [](const model::TransformerSpec&,
                        const parallel::ParallelConfig&,
                        const hw::ClusterSpec&) -> runtime::RunResult {
    throw ConfigError("rejected");
  };
  const auto none =
      find_best(spec, cluster, Method::kBreadthFirst, 64, options);
  EXPECT_FALSE(none.best.has_value());
  EXPECT_EQ(none.evaluated, 0);
  EXPECT_GT(none.infeasible, 0);
}

TEST(BatchSizes, MatchThePaperSweeps) {
  EXPECT_EQ(paper_batch_sizes_52b().front(), 8);
  EXPECT_EQ(paper_batch_sizes_52b().back(), 512);
  EXPECT_EQ(paper_batch_sizes_6_6b().front(), 32);
}

TEST(MethodNames, Render) {
  EXPECT_STREQ(to_string(Method::kBreadthFirst), "Breadth-first");
  EXPECT_STREQ(to_string(Method::kNoPipeline), "No pipeline");
}

TEST(MethodNames, ParseRoundTripsEveryValue) {
  for (Method method : all_methods()) {
    EXPECT_EQ(parse_method(to_string(method)), method);
  }
}

TEST(MethodNames, ParseShortNamesAndErrors) {
  EXPECT_EQ(parse_method("bf"), Method::kBreadthFirst);
  EXPECT_EQ(parse_method("df"), Method::kDepthFirst);
  EXPECT_EQ(parse_method("nl"), Method::kNonLooped);
  EXPECT_EQ(parse_method("non-looped"), Method::kNonLooped);
  EXPECT_EQ(parse_method("np"), Method::kNoPipeline);
  EXPECT_EQ(parse_method("2d"), Method::kNoPipeline);
  EXPECT_EQ(parse_method("No Pipeline"), Method::kNoPipeline);
  EXPECT_THROW(parse_method("best"), ConfigError);
}

TEST(MethodNames, AllMethodsInPaperOrder) {
  ASSERT_EQ(all_methods().size(), 4u);
  EXPECT_EQ(all_methods().front(), Method::kBreadthFirst);
  EXPECT_EQ(all_methods().back(), Method::kNoPipeline);
}

}  // namespace
}  // namespace bfpp::autotune
