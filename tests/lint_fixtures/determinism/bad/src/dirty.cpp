// Fixture: one of every banned nondeterminism source (bad twin).
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

int entropy_soup() {
  std::unordered_map<int, int> counts{{1, 2}, {3, 4}};
  int acc = 0;
  for (const auto& kv : counts) acc += kv.second;
  srand(static_cast<unsigned>(time(nullptr)));
  std::random_device dev;
  return acc + rand() + static_cast<int>(dev());
}
