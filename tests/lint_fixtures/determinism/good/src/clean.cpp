// Fixture: deterministic code only (good twin).
#include <map>
#include <vector>

int sum_ordered() {
  std::map<int, int> counts{{1, 2}, {3, 4}};
  int acc = 0;
  for (const auto& kv : counts) acc += kv.second;
  std::vector<int> v{1, 2, 3};
  for (int x : v) acc += x;
  return acc;
}
