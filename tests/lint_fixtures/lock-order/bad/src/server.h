// Fixture: two classes whose nesting matches the documented order.
#pragma once

struct Cache {
  void save();
  Mutex mutex_;
};

struct Server {
  void start();
  void flush();
  Cache cache_;
  Mutex a_mutex_;
  Mutex b_mutex_;
};
