// Fixture, deliberately broken: start() inverts documented pair 1,
// poke() nests an undocumented pair, wedge() re-locks a held mutex,
// and documented pair 3 is never exercised anywhere.
#include "server.h"

void Cache::save() {
  const LockGuard lock(mutex_);
}

void Server::start() {
  const LockGuard outer(b_mutex_);
  const LockGuard inner(a_mutex_);
}

void Server::flush() {
  const LockGuard lock(a_mutex_);
  cache_.save();
}

void Server::poke() {
  const LockGuard lock(b_mutex_);
  const LockGuard lock2(e_mutex_);
}

void Server::wedge() {
  const LockGuard lock(a_mutex_);
  const LockGuard again(a_mutex_);
}
