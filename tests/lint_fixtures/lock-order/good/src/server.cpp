#include "server.h"

void Cache::save() {
  const LockGuard lock(mutex_);
}

void Server::start() {
  const LockGuard outer(a_mutex_);
  const LockGuard inner(b_mutex_);
}

void Server::flush() {
  const LockGuard lock(a_mutex_);
  cache_.save();
}
