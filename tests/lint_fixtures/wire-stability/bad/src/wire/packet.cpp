// Fixture implementation, deliberately broken two ways:
//   * member `b` never reaches to_wire() (silent drop on persist);
//   * from_wire() reads a key "c" that to_wire() never emits.
#include "packet.h"

namespace mini {

namespace {
std::string wire_field(const std::string& text, const char* key) {
  (void)text;
  (void)key;
  return "0";
}
}  // namespace

std::string Packet::to_wire() const {
  std::string out;
  out += "\"a\":" + std::to_string(a);
  return out;
}

Packet Packet::from_wire(const std::string& text) {
  Packet p;
  p.a = std::stoi(wire_field(text, "a"));
  p.b = std::stod(wire_field(text, "c"));
  return p;
}

}  // namespace mini
