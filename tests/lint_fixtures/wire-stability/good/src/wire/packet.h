// Fixture: minimal wire-format struct, fully in sync (good twin).
#pragma once
#include <string>

namespace mini {

struct Packet {
  int a = 0;
  double b = 0.0;

  std::string to_wire() const;
  static Packet from_wire(const std::string& text);
};

}  // namespace mini
