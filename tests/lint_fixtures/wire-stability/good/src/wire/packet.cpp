// Fixture implementation: every member emitted in declaration order,
// every emitted key read back.
#include "packet.h"

namespace mini {

namespace {
std::string wire_field(const std::string& text, const char* key) {
  (void)text;
  (void)key;
  return "0";
}
}  // namespace

std::string Packet::to_wire() const {
  std::string out;
  out += "\"a\":" + std::to_string(a);
  out += ",\"b\":" + std::to_string(b);
  return out;
}

Packet Packet::from_wire(const std::string& text) {
  Packet p;
  p.a = std::stoi(wire_field(text, "a"));
  p.b = std::stod(wire_field(text, "b"));
  return p;
}

}  // namespace mini
