#pragma once
namespace api {
enum class Backend { kSimulator, kAnalytic };
}  // namespace api
