namespace {
const char* cli_usage() {
  return "usage: bfpp <command>\n"
         "  --schedule gpipe|1f1b\n"
         "  --backend sim|analytic\n";
}
}  // namespace
