#include "engine.h"
#include <string>
namespace api {
const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSimulator: return "sim";
    case Backend::kAnalytic: return "analytic";
  }
  return "?";
}
Backend parse_backend(const std::string& s) {
  if (s == "sim" || s == "simulator") return Backend::kSimulator;
  if (s == "analytic" || s == "theory") return Backend::kAnalytic;
  throw s;
}
}  // namespace api
