#include "schedule.h"
namespace schedule {
static const FamilyInfo kFamilies[] = {
    {Family::kGpipe, ScheduleKind::kGpipe, "Gpipe", "Huang et al. 2019"},
    {Family::kOneFOneB, ScheduleKind::kOneFOneB, "1F1B",
     "Narayanan et al. 2019"},
};
}  // namespace schedule
