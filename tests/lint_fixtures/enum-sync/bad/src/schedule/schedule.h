#pragma once
namespace schedule {
enum class Family { kGpipe, kOneFOneB, kDepthFirst };
}  // namespace schedule
