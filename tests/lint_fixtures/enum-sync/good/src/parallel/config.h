// Fixture: two-family miniature of the real enum surface (good twin).
#pragma once
namespace parallel {
enum class ScheduleKind { kGpipe, kOneFOneB };
enum class DpSharding { kNone, kFull };
}  // namespace parallel
