#include "config.h"
#include <string>
namespace parallel {
const char* to_string(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kGpipe: return "GPipe";
    case ScheduleKind::kOneFOneB: return "1F1B";
  }
  return "?";
}
const char* to_string(DpSharding s) {
  switch (s) {
    case DpSharding::kNone: return "none";
    case DpSharding::kFull: return "full";
  }
  return "?";
}
ScheduleKind parse_schedule_kind(const std::string& s) {
  if (s == "gpipe") return ScheduleKind::kGpipe;
  if (s == "1f1b" || s == "one-f-one-b") return ScheduleKind::kOneFOneB;
  throw s;
}
DpSharding parse_sharding(const std::string& s) {
  if (s == "none") return DpSharding::kNone;
  if (s == "full") return DpSharding::kFull;
  throw s;
}
}  // namespace parallel
