#pragma once
namespace schedule {
enum class Family { kGpipe, kOneFOneB };
}  // namespace schedule
