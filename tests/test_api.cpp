// Tests for the bfpp::api experiment layer: ScenarioBuilder validation,
// the preset registry, Report JSON/CSV golden output, the run()/search()
// entry points and CLI flag parsing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/api.h"
#include "api/cli.h"
#include "common/error.h"

namespace bfpp::api {
namespace {

// The Figure 5a acceptance operating point.
ScenarioBuilder fig5a_builder() {
  return ScenarioBuilder()
      .model("52b")
      .cluster("dgx1-v100-ib")
      .pp(8)
      .tp(8)
      .nmb(16)
      .schedule("bf")
      .loop(4);
}

// ---- ScenarioBuilder ----

TEST(ScenarioBuilder, BuildsTheFig5aOperatingPoint) {
  const Scenario s = fig5a_builder().build();
  ASSERT_TRUE(s.config.has_value());
  EXPECT_EQ(s.config->n_pp, 8);
  EXPECT_EQ(s.config->n_tp, 8);
  EXPECT_EQ(s.config->n_dp, 1);  // inferred: 64 GPUs / (8*8)
  EXPECT_EQ(s.config->n_mb, 16);
  EXPECT_EQ(s.config->n_loop, 4);
  EXPECT_EQ(s.config->schedule, parallel::ScheduleKind::kBreadthFirst);
  EXPECT_EQ(s.batch_size, 16);
  EXPECT_DOUBLE_EQ(s.beta(), 0.25);
}

TEST(ScenarioBuilder, RequiresModelAndCluster) {
  EXPECT_THROW(ScenarioBuilder().build(), ConfigError);
  EXPECT_THROW(ScenarioBuilder().model("52b").build(), ConfigError);
  EXPECT_THROW(ScenarioBuilder().cluster("dgx1-v100-ib").build(),
               ConfigError);
}

TEST(ScenarioBuilder, RejectsGridThatDoesNotDivideCluster) {
  EXPECT_THROW(fig5a_builder().pp(5).build(), ConfigError);
}

TEST(ScenarioBuilder, RejectsInvalidScheduleConstraints) {
  // Non-looped schedule with N_loop > 1 violates parallel::validate.
  EXPECT_THROW(fig5a_builder().schedule("gpipe").loop(4).build(),
               ConfigError);
  // Depth-first needs N_mb divisible by N_PP.
  EXPECT_THROW(fig5a_builder().schedule("df").nmb(12).build(), ConfigError);
}

TEST(ScenarioBuilder, RejectsContradictoryBatch) {
  EXPECT_THROW(fig5a_builder().batch(32).build(), ConfigError);
  EXPECT_NO_THROW(fig5a_builder().batch(16).build());
}

TEST(ScenarioBuilder, DerivesNmbFromBatch) {
  const Scenario s = ScenarioBuilder()
                         .model("6.6b")
                         .cluster("dgx1-v100-ib")
                         .pp(4)
                         .tp(2)
                         .schedule("bf")
                         .loop(4)
                         .batch(64)
                         .build();
  ASSERT_TRUE(s.config.has_value());
  EXPECT_EQ(s.config->n_dp, 8);  // 64 / (4*2)
  EXPECT_EQ(s.config->n_mb, 8);  // 64 / (8*1)
}

TEST(ScenarioBuilder, SearchOnlyScenarioHasNoConfig) {
  const Scenario s = ScenarioBuilder()
                         .model("52b")
                         .cluster("dgx1-v100-ib")
                         .batch(64)
                         .build();
  EXPECT_FALSE(s.config.has_value());
  EXPECT_EQ(s.batch_size, 64);
  EXPECT_THROW(s.require_config(), ConfigError);
}

TEST(ScenarioBuilder, SearchOnlyScenarioNeedsBatch) {
  EXPECT_THROW(
      ScenarioBuilder().model("52b").cluster("dgx1-v100-ib").build(),
      ConfigError);
}

TEST(ScenarioBuilder, MegatronFlagsApplied) {
  const Scenario s = fig5a_builder().schedule("df").megatron().build();
  ASSERT_TRUE(s.config.has_value());
  EXPECT_FALSE(s.config->overlap_dp);
  EXPECT_FALSE(s.config->overlap_pp);
}

TEST(ScenarioBuilder, OverlapOverridesAdoptedConfig) {
  const parallel::ParallelConfig base =
      fig5a_builder().build().require_config();
  const Scenario s = ScenarioBuilder()
                         .model("52b")
                         .cluster("dgx1-v100-ib")
                         .config(base)
                         .overlap(false, false)
                         .build();
  EXPECT_FALSE(s.config->overlap_dp);
  EXPECT_FALSE(s.config->overlap_pp);
}

TEST(ScenarioBuilder, SearchOnlyRejectsCapabilityFlags) {
  auto search_only = [] {
    return ScenarioBuilder().model("52b").cluster("dgx1-v100-ib").batch(64);
  };
  EXPECT_THROW(search_only().megatron().build(), ConfigError);
  EXPECT_THROW(search_only().overlap(false, true).build(), ConfigError);
}

// ---- Registry ----

TEST(Registry, KnownModelNamesResolve) {
  for (const std::string& name : model_names()) {
    EXPECT_GT(lookup_model(name).n_layers, 0) << name;
  }
  EXPECT_EQ(lookup_model("52b").name, "52B");
  EXPECT_EQ(lookup_model("GPT-3").name, "GPT-3");  // alias, any case
}

TEST(Registry, UnknownModelThrowsWithKnownNames) {
  try {
    lookup_model("llama");
    FAIL() << "expected throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("52b"), std::string::npos);
  }
}

TEST(Registry, KnownClusterNamesResolve) {
  for (const std::string& name : cluster_names()) {
    EXPECT_GT(lookup_cluster(name).total_gpus(), 0) << name;
  }
}

TEST(Registry, ClusterNodeCountSuffix) {
  EXPECT_EQ(lookup_cluster("dgx1-v100-ib").total_gpus(), 64);
  EXPECT_EQ(lookup_cluster("dgx1-v100-ib:64").total_gpus(), 512);
  EXPECT_EQ(lookup_cluster("dgx-a100-ib:4").total_gpus(), 32);
  EXPECT_THROW(lookup_cluster("dgx1-v100-ib:"), ConfigError);
  EXPECT_THROW(lookup_cluster("dgx1-v100-ib:zero"), ConfigError);
  EXPECT_THROW(lookup_cluster("dgx1-v100-ib:0"), ConfigError);
  EXPECT_THROW(lookup_cluster("exacluster"), ConfigError);
}

TEST(Registry, EveryScenarioPresetBuilds) {
  for (const std::string& name : scenario_names()) {
    const Scenario s = lookup_scenario(name);
    EXPECT_EQ(s.name, name);
    EXPECT_TRUE(s.config.has_value()) << name;
  }
  EXPECT_THROW(lookup_scenario("fig0"), ConfigError);
}

TEST(Registry, AcceptancePresetMatchesFigure5a) {
  const Scenario s = lookup_scenario("fig5a-bf-b16");
  EXPECT_EQ(s.config->describe(),
            "Breadth-first pp8 tp8 dp1 smb1 nmb16 loop4 DP0");
}

// ---- Report emitters (golden output on a hand-built Report) ----

Report golden_report() {
  Report r;
  r.scenario = "golden";
  r.model = "52B";
  r.cluster = "DGX-1 V100 (InfiniBand)";
  r.n_gpus = 64;
  r.batch_size = 16;
  r.found = true;
  r.config.n_pp = 8;
  r.config.n_tp = 8;
  r.config.n_dp = 1;
  r.config.s_mb = 1;
  r.config.n_mb = 16;
  r.config.n_loop = 4;
  r.result.batch_time = 2.0;
  r.result.throughput_per_gpu = 5.25e13;
  r.result.utilization = 0.42;
  r.result.compute_idle_fraction = 0.125;
  r.memory.state_bytes = 1.0e10;
  r.memory.buffer_bytes = 2.0e9;
  r.memory_min.state_bytes = 1.0e9;
  return r;
}

TEST(Report, JsonGolden) {
  const std::string json = golden_report().to_json();
  EXPECT_NE(json.find("\"scenario\": \"golden\""), std::string::npos);
  EXPECT_NE(json.find("\"model\": \"52B\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": null"), std::string::npos);
  EXPECT_NE(json.find("\"beta\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"schedule\": \"Breadth-first\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_time_s\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\": 0.42"), std::string::npos);
  EXPECT_NE(json.find("\"throughput_per_gpu\": 5.25e+13"), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\": 1.2e+10"), std::string::npos);
  EXPECT_NE(json.find("\"state_bytes\": 1000000000"), std::string::npos);
  // No search stats for a plain run.
  EXPECT_EQ(json.find("\"search\""), std::string::npos);
}

TEST(Report, JsonEscapesStrings) {
  Report r = golden_report();
  r.scenario = "quo\"te\\path\n";
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"quo\\\"te\\\\path\\n\""), std::string::npos);
}

TEST(Report, JsonEscapesHostileNamesEverywhere) {
  // A hostile name() must come out escaped in every string field the
  // JSON emitter interpolates: scenario, model, cluster and method.
  const std::string hostile =
      "evil\"name\\with\tctrl\x01"
      "and\rnewline\n";
  const std::string escaped =
      "evil\\\"name\\\\with\\tctrl\\u0001and\\u000dnewline\\n";
  Report r = golden_report();
  r.scenario = hostile;
  r.model = hostile;
  r.cluster = hostile;
  r.method = hostile;
  const std::string json = r.to_json();
  EXPECT_EQ(json.find(hostile), std::string::npos) << "raw interpolation";
  EXPECT_NE(json.find("\"scenario\": \"" + escaped + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"model\": \"" + escaped + "\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\": \"" + escaped + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"method\": \"" + escaped + "\""), std::string::npos);
  // No unescaped quote/control byte may survive inside any JSON string.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n') << +c;
  }
}

TEST(Report, HostileScenarioNameSurvivesTheBuilderRoundTrip) {
  // End to end: a hostile ScenarioBuilder::name() flows through
  // estimate_memory into valid JSON and quoted CSV.
  const Scenario s =
      fig5a_builder().name("bad\"name,\\with\nbreaks\r").build();
  const Report report = estimate_memory(s);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"bad\\\"name,\\\\with\\nbreaks\\u000d\""),
            std::string::npos);
  const std::string csv = report.to_csv_row();
  EXPECT_EQ(csv.rfind("\"bad\"\"name,\\with\nbreaks\r\"", 0), 0u);
}

TEST(Report, CsvGolden) {
  const std::string csv = golden_report().to_csv();
  const std::string expected_header =
      "scenario,model,cluster,method,n_gpus,batch_size,beta,found,"
      "schedule,sharding,n_pp,n_tp,n_dp,s_mb,n_mb,n_loop,overlap_dp,"
      "overlap_pp,batch_time_s,throughput_per_gpu,utilization,"
      "compute_idle_fraction,memory_total_bytes,memory_min_total_bytes,"
      "evaluated,infeasible,error";
  const std::string expected_row =
      "golden,52B,DGX-1 V100 (InfiniBand),,64,16,0.25,1,"
      "Breadth-first,DP0,8,8,1,1,16,4,1,1,2,5.25e+13,0.42,0.125,"
      "1.2e+10,1000000000,0,0,";
  EXPECT_EQ(csv, expected_header + "\n" + expected_row + "\n");
}

TEST(Report, CsvErrorColumnKeepsTheSchemaStableAcrossFailedCells) {
  // A failed sweep cell carries its reason in the last CSV column; a
  // successful row emits an explicit empty string there. Both rows have
  // the same column count, so sweep CSVs stay rectangular.
  Report failed;
  failed.scenario = "bad-cell";
  failed.found = false;
  failed.error = "[config] stages do not divide layers";
  const std::string row = failed.to_csv_row();
  EXPECT_NE(row.find(",[config] stages do not divide layers"),
            std::string::npos);
  const auto columns = [](const std::string& line) {
    size_t n = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++n;
    }
    return n;
  };
  EXPECT_EQ(columns(Report::csv_header()), columns(row));
  EXPECT_EQ(columns(Report::csv_header()), columns(golden_report().to_csv_row()));
  // Errors with commas are quoted so they stay one column.
  failed.error = "[oom] needs 3 GB, has 2 GB";
  EXPECT_EQ(columns(failed.to_csv_row()), columns(Report::csv_header()));
}

TEST(Report, CsvQuotesCommas) {
  Report r = golden_report();
  r.cluster = "a,b";
  EXPECT_NE(r.to_csv_row().find("\"a,b\""), std::string::npos);
}

TEST(Report, NotFoundRowsDegradeGracefully) {
  Report r;
  r.scenario = "empty";
  r.method = "Breadth-first";
  r.n_gpus = 64;
  r.batch_size = 4;
  r.evaluated = 0;
  r.infeasible = 12;
  EXPECT_NE(r.to_json().find("\"found\": false"), std::string::npos);
  EXPECT_NE(r.to_json().find("\"infeasible\": 12"), std::string::npos);
  EXPECT_EQ(r.to_json().find("\"config\""), std::string::npos);
  EXPECT_NE(r.to_csv_row().find(",,,,"), std::string::npos);
  EXPECT_EQ(to_table({r}).row_count(), 1u);
}

TEST(Report, TableRendersOneRowPerReport) {
  const Table t = to_table({golden_report(), golden_report()});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_NE(t.to_string().find("golden"), std::string::npos);
}

// ---- run/search entry points ----

TEST(Run, Figure5aOperatingPoint) {
  const Report report = api::run(fig5a_builder().name("fig5a").build());
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.scenario, "fig5a");
  EXPECT_EQ(report.n_gpus, 64);
  EXPECT_EQ(report.batch_size, 16);
  // Paper Figure 5a at beta = 0.25: ~42% utilization.
  EXPECT_NEAR(report.result.utilization, 0.42, 0.03);
  EXPECT_GT(report.memory.total(), 0.0);
  EXPECT_GT(report.result.batch_time, 0.0);
}

TEST(Run, TryRunReturnsNulloptOnOom) {
  // 52B unsharded on a single pipeline stage cannot fit in 32 GB.
  const Scenario s = ScenarioBuilder()
                         .model("52b")
                         .cluster("dgx1-v100-ib")
                         .pp(1)
                         .tp(1)
                         .dp(64)
                         .nmb(1)
                         .schedule("gpipe")
                         .build();
  EXPECT_FALSE(try_run(s).has_value());
  EXPECT_THROW(api::run(s), Error);
}

TEST(Run, TimelineRendersGantt) {
  const Timeline timeline =
      run_with_timeline(lookup_scenario("fig9-bf-fs"), {});
  EXPECT_TRUE(timeline.report.found);
  EXPECT_NE(timeline.gantt.find("gpu0.compute"), std::string::npos);
  EXPECT_NE(timeline.gantt.find("gpu0.dp"), std::string::npos);
}

TEST(Search, FindsABreadthFirstConfig) {
  const Scenario s = ScenarioBuilder()
                         .model("6.6b")
                         .cluster("dgx1-v100-ib")
                         .batch(64)
                         .build();
  const Report report = api::search(s, autotune::Method::kBreadthFirst);
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.method, "Breadth-first");
  EXPECT_GT(report.evaluated, 0);
  EXPECT_EQ(report.config.batch_size(), 64);
  EXPECT_NE(report.to_json().find("\"search\""), std::string::npos);
}

TEST(Search, RequiresBatch) {
  Scenario s = lookup_scenario("fig5a-bf-b16");
  s.batch_size = 0;
  EXPECT_THROW(api::search(s, autotune::Method::kBreadthFirst), ConfigError);
}

TEST(EstimateMemory, MatchesMemmodel) {
  const Report report = estimate_memory(lookup_scenario("fig5a-bf-b16"));
  EXPECT_TRUE(report.found);
  EXPECT_GT(report.memory.total(), 0.0);
  EXPECT_DOUBLE_EQ(report.result.batch_time, 0.0);  // no simulation ran
}

// ---- CLI parsing ----

std::vector<std::string> acceptance_args() {
  return {"run",     "--model", "52b",  "--cluster", "dgx1-v100-ib",
          "--pp",    "8",       "--tp", "8",         "--nmb",
          "16",      "--schedule", "bf", "--loop",   "4",
          "--json"};
}

TEST(Cli, ParsesTheAcceptanceCommand) {
  const CliOptions options = parse_cli(acceptance_args());
  EXPECT_EQ(options.command, "run");
  EXPECT_EQ(options.model, "52b");
  EXPECT_EQ(options.cluster, "dgx1-v100-ib");
  EXPECT_EQ(options.pp, 8);
  EXPECT_EQ(options.tp, 8);
  EXPECT_EQ(options.nmb, 16);
  EXPECT_EQ(options.schedule, "bf");
  EXPECT_EQ(options.loop, 4);
  EXPECT_TRUE(options.json);
  EXPECT_FALSE(options.csv);

  const Scenario scenario = scenario_from_cli(options);
  EXPECT_EQ(scenario.config->describe(),
            lookup_scenario("fig5a-bf-b16").config->describe());
}

TEST(Cli, RejectsUnknownCommandsAndFlags) {
  EXPECT_THROW(parse_cli({}), ConfigError);
  EXPECT_THROW(parse_cli({"explode"}), ConfigError);
  EXPECT_THROW(parse_cli({"run", "--warp", "9"}), ConfigError);
  EXPECT_THROW(parse_cli({"run", "--pp"}), ConfigError);          // no value
  EXPECT_THROW(parse_cli({"run", "--pp", "eight"}), ConfigError);  // not int
  EXPECT_THROW(parse_cli({"run", "--json", "--csv"}), ConfigError);
}

TEST(Cli, MalformedIntegerFlagValuesAreUsageErrors) {
  // No bare std::stoi anywhere on the flag path: junk and overflow both
  // surface as a UsageError naming the flag and the value...
  for (const char* bad : {"eight", "8x", "-4", "99999999999999999999"}) {
    try {
      parse_cli({"run", "--pp", bad});
      FAIL() << "expected UsageError for --pp " << bad;
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find("--pp"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
    }
  }
  // ...and cli_main turns exactly that case into exit code 2, while
  // other usage problems stay at 1.
  auto exit_code = [](std::vector<const char*> args) {
    args.insert(args.begin(), "bfpp");
    return cli_main(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
  };
  EXPECT_EQ(exit_code({"run", "--pp", "eight"}), 2);
  EXPECT_EQ(exit_code({"sweep", "--nmb", "8,foo"}), 2);
  EXPECT_EQ(exit_code({"run", "--gpus", "foo"}), 1);  // unknown flag
  EXPECT_EQ(exit_code({"frobnicate"}), 1);            // unknown command
}

TEST(Cli, ServeFlagsParse) {
  // The serve flags parse straight into the api::ServeOptions the
  // Server is constructed from - CliOptions carries no duplicate
  // fields.
  const CliOptions serve = parse_cli(
      {"serve", "--port", "0", "--cache-size", "16", "--max-connections", "4",
       "--max-inflight-per-client", "2", "--cache-file", "reports.jsonl",
       "--checkpoint-interval", "30"});
  EXPECT_EQ(serve.serve.port, 0);
  EXPECT_EQ(serve.serve.cache_capacity, 16u);
  EXPECT_EQ(serve.serve.max_connections, 4);
  EXPECT_EQ(serve.serve.max_inflight_per_client, 2);
  EXPECT_EQ(serve.serve.cache_file, "reports.jsonl");
  EXPECT_EQ(serve.serve.checkpoint_interval, 30);
  // --max-clients survives as a documented legacy alias.
  EXPECT_EQ(parse_cli({"serve", "--max-clients", "7"}).serve.max_connections,
            7);
  EXPECT_THROW(parse_cli({"serve", "--max-connections", "0"}), ConfigError);
  EXPECT_THROW(parse_cli({"serve", "--max-clients", "0"}), ConfigError);
  EXPECT_THROW(parse_cli({"serve", "--max-inflight-per-client", "0"}),
               ConfigError);
  EXPECT_THROW(parse_cli({"run", "--max-connections", "4"}), ConfigError);
  EXPECT_THROW(parse_cli({"run", "--max-inflight-per-client", "4"}),
               ConfigError);
  EXPECT_THROW(parse_cli({"run", "--cache-file", "f"}), ConfigError);
  // A checkpoint interval needs somewhere to write, a positive period,
  // and only makes sense for serve.
  EXPECT_THROW(parse_cli({"serve", "--checkpoint-interval", "30"}),
               ConfigError);
  EXPECT_THROW(parse_cli({"serve", "--cache-file", "f",
                          "--checkpoint-interval", "0"}),
               ConfigError);
  EXPECT_THROW(parse_cli({"run", "--checkpoint-interval", "30"}),
               ConfigError);
}

TEST(Cli, PresetAndListForms) {
  const CliOptions preset =
      parse_cli({"run", "--preset", "fig5a-bf-b16", "--timeline"});
  EXPECT_TRUE(preset.timeline);
  EXPECT_EQ(scenario_from_cli(preset).name, "fig5a-bf-b16");

  const CliOptions list = parse_cli({"list", "models"});
  EXPECT_EQ(list.command, "list");
  EXPECT_EQ(list.list_what, "models");
}

TEST(Cli, PresetRejectsConflictingScenarioFlags) {
  EXPECT_THROW(scenario_from_cli(parse_cli(
                   {"run", "--preset", "fig5a-bf-b16", "--schedule", "df"})),
               ConfigError);
  EXPECT_THROW(scenario_from_cli(
                   parse_cli({"run", "--preset", "fig5a-bf-b16", "--pp", "4"})),
               ConfigError);
}

TEST(Cli, SearchNeedsBatch) {
  const CliOptions options =
      parse_cli({"search", "--model", "6.6b", "--batch", "64"});
  const Scenario scenario = scenario_from_cli(options);
  EXPECT_FALSE(scenario.config.has_value());
  EXPECT_EQ(scenario.batch_size, 64);
  EXPECT_THROW(scenario_from_cli(parse_cli({"search", "--model", "6.6b"})),
               ConfigError);
}

TEST(Cli, SearchRejectsConfigPinningFlags) {
  // The search enumerates grid/schedule/sharding itself; pinning flags
  // must error rather than be silently dropped.
  for (const std::vector<std::string>& extra :
       std::vector<std::vector<std::string>>{{"--smb", "2"},
                                             {"--schedule", "gpipe"},
                                             {"--pp", "4"},
                                             {"--megatron"}}) {
    std::vector<std::string> args = {"search", "--model", "6.6b", "--batch",
                                     "64"};
    args.insert(args.end(), extra.begin(), extra.end());
    EXPECT_THROW(scenario_from_cli(parse_cli(args)), ConfigError)
        << extra.front();
  }
}

TEST(Cli, IntFlagOverflowIsAConfigError) {
  EXPECT_THROW(parse_cli({"run", "--pp", "99999999999"}), ConfigError);
  EXPECT_THROW(lookup_cluster("dgx1-v100-ib:99999999999"), ConfigError);
  EXPECT_THROW(parallel::ParallelConfig::parse("bf pp99999999999999"),
               ConfigError);
}

TEST(Cli, UsageMentionsEveryCommand) {
  const std::string usage = cli_usage();
  for (const char* needle : {"run", "search", "list", "--json", "--preset"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace bfpp::api
