// Seeded property tests for the schedule generators: random
// (family x pp x micro-batch x placement) points - including
// non-power-of-two pipelines - must validate, conserve work, and
// simulate deadlock-free when emitted into the task-graph arena with
// unit costs. Complements test_schedule.cpp's example-based tests with
// breadth over the parameter space.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "parallel/config.h"
#include "schedule/schedule.h"
#include "sim/task_graph.h"

namespace bfpp::schedule {
namespace {

using parallel::ScheduleKind;

struct Point {
  ScheduleKind kind = ScheduleKind::kBreadthFirst;
  int n_pp = 1;
  int n_loop = 1;
  int n_mb = 1;
  std::string tag;
};

// Random generator point with family-appropriate shape constraints.
// Pipeline sizes deliberately include the non-power-of-two corners
// (3, 5, 6, 7) that the unbalanced family exists for.
Point random_point(Rng& rng, int i) {
  static const ScheduleKind kKinds[] = {
      ScheduleKind::kGpipe,        ScheduleKind::kOneFOneB,
      ScheduleKind::kDepthFirst,   ScheduleKind::kBreadthFirst,
      ScheduleKind::kOneFOneBAsync, ScheduleKind::kUnbalanced,
      ScheduleKind::kVSchedule,    ScheduleKind::kTwoBP,
  };
  static const int kPipelines[] = {1, 2, 3, 4, 5, 6, 7, 8};
  Point p;
  p.kind = kKinds[rng.uniform_index(std::size(kKinds))];
  p.n_pp = kPipelines[rng.uniform_index(std::size(kPipelines))];
  switch (p.kind) {
    case ScheduleKind::kBreadthFirst:
    case ScheduleKind::kDepthFirst:
      p.n_loop = 1 << rng.uniform_index(3);  // 1, 2 or 4
      break;
    case ScheduleKind::kVSchedule:
      p.n_loop = 2;
      break;
    default:
      p.n_loop = 1;
      break;
  }
  p.n_mb = p.kind == ScheduleKind::kDepthFirst
               ? p.n_pp * static_cast<int>(1 + rng.uniform_index(4))
               : static_cast<int>(1 + rng.uniform_index(16));
  p.tag = "#" + std::to_string(i) + " " +
          std::string(parallel::to_string(p.kind)) + " pp" +
          std::to_string(p.n_pp) + " loop" + std::to_string(p.n_loop) + " mb" +
          std::to_string(p.n_mb);
  return p;
}

// Emits a schedule into the task-graph arena with unit compute costs and
// the pipeline data dependencies (F(s,m) after F(s-1,m); B(s,m) after
// B(s+1,m) and F(s,m); B_w(s,m) after B_x(s,m)), then runs it. Reserved
// cells + in-order definition exercise the same reserve/define pattern
// the simulator uses; sim::run throws on any dependency cycle.
sim::SimResult simulate_unit_costs(const Schedule& s) {
  sim::TaskGraph g;
  g.reserve(arena_task_bound(s), arena_dep_bound(s));
  std::vector<sim::StreamId> streams;
  for (int r = 0; r < s.n_pp; ++r) {
    streams.push_back(g.add_stream("dev" + std::to_string(r)));
  }
  const int n_stages = s.n_stages();
  const int cells = n_stages * s.n_mb;
  auto idx = [&](int stage, int m) {
    return static_cast<size_t>(stage) * static_cast<size_t>(s.n_mb) +
           static_cast<size_t>(m);
  };
  std::vector<sim::TaskId> fwd(static_cast<size_t>(cells));
  std::vector<sim::TaskId> bwd(static_cast<size_t>(cells));
  std::vector<sim::TaskId> bww(
      s.split_backward ? static_cast<size_t>(cells) : 0);
  for (int c = 0; c < cells; ++c) {
    fwd[static_cast<size_t>(c)] = g.reserve_task();
    bwd[static_cast<size_t>(c)] = g.reserve_task();
    if (s.split_backward) bww[static_cast<size_t>(c)] = g.reserve_task();
  }
  for (int r = 0; r < s.n_pp; ++r) {
    for (const Op& op : s.device_ops[static_cast<size_t>(r)]) {
      const int st = op.stage;
      const int m = op.micro_batch;
      std::vector<sim::TaskId> deps;
      sim::TaskId id = sim::kInvalidTask;
      switch (op.kind) {
        case OpKind::kForward:
          if (st > 0) deps.push_back(fwd[idx(st - 1, m)]);
          id = fwd[idx(st, m)];
          break;
        case OpKind::kBackward:
        case OpKind::kBackwardInput:
          deps.push_back(fwd[idx(st, m)]);
          if (st < n_stages - 1) deps.push_back(bwd[idx(st + 1, m)]);
          id = bwd[idx(st, m)];
          break;
        case OpKind::kBackwardWeight:
          deps.push_back(bwd[idx(st, m)]);
          id = bww[idx(st, m)];
          break;
      }
      g.define_task(id, streams[static_cast<size_t>(r)], 1.0,
                    std::span<const sim::TaskId>(deps.data(), deps.size()));
    }
  }
  return sim::run(g);
}

TEST(ScheduleProps, SeededPointsValidateConserveAndSimulate) {
  Rng rng(0x5c8ed01e);
  for (int i = 0; i < 200; ++i) {
    const Point p = random_point(rng, i);
    const Schedule s =
        make_schedule(p.kind, p.n_pp, p.n_loop, p.n_mb);
    ASSERT_NO_THROW(validate(s)) << p.tag;

    // Work conservation: every (stage, micro-batch) cell runs each of
    // its passes exactly once across the whole pipeline - splitting the
    // backward must move work, never create or destroy it.
    std::map<std::tuple<int, int, int>, int> count;
    auto cell = [](OpKind kind, int stage, int m) {
      return std::make_tuple(static_cast<int>(kind), stage, m);
    };
    for (const auto& ops : s.device_ops) {
      for (const Op& op : ops) {
        ++count[cell(op.kind, op.stage, op.micro_batch)];
      }
    }
    EXPECT_EQ(static_cast<int>(count.size()), s.total_ops()) << p.tag;
    for (const auto& [key, n] : count) EXPECT_EQ(n, 1) << p.tag;
    for (int st = 0; st < s.n_stages(); ++st) {
      for (int m = 0; m < s.n_mb; ++m) {
        EXPECT_EQ(count[cell(OpKind::kForward, st, m)], 1) << p.tag;
        const int fused = count[cell(OpKind::kBackward, st, m)];
        const int bx = count[cell(OpKind::kBackwardInput, st, m)];
        const int bw = count[cell(OpKind::kBackwardWeight, st, m)];
        // 2BP conservation: B_x + B_w together replace the fused B.
        EXPECT_EQ(fused + (bx + bw) / 2, 1) << p.tag;
        EXPECT_EQ(bx, bw) << p.tag;
      }
    }

    // Deadlock-freedom under real in-order stream execution, not just
    // validate()'s abstract replay: emit into the arena and run.
    const sim::SimResult result = simulate_unit_costs(s);
    // With unit costs the critical path is at least one full
    // forward+backward chain through every stage.
    EXPECT_GE(result.makespan(), 2.0 * s.n_stages()) << p.tag;
    // And no device can beat its own op count.
    EXPECT_GE(result.makespan(), static_cast<double>(s.ops_per_device()))
        << p.tag;
  }
}

TEST(ScheduleProps, ArenaBoundsCoverEmission) {
  // The pre-sizing bounds advertised to the simulator must dominate the
  // actual emission for every family (the reserve contract: no growth
  // reallocation).
  Rng rng(0xa2ea);
  for (int i = 0; i < 100; ++i) {
    const Point p = random_point(rng, i);
    const Schedule s = make_schedule(p.kind, p.n_pp, p.n_loop, p.n_mb);
    int ops = 0;
    for (const auto& device : s.device_ops)
      ops += static_cast<int>(device.size());
    EXPECT_EQ(ops, s.total_ops()) << p.tag;
    EXPECT_GE(arena_task_bound(s), 2 * ops) << p.tag;
    EXPECT_GE(arena_dep_bound(s), 3 * ops) << p.tag;
  }
}

}  // namespace
}  // namespace bfpp::schedule
