// Tests for the multi-backend execution layer and parallel sweep
// campaigns: the shared work-stealing thread pool, the Engine backends
// (simulator / analytic / threaded), SweepBuilder grids, sweep()
// determinism across thread counts, and the sweep/validate CLI surface.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.h"
#include "api/cli.h"
#include "api/compare.h"
#include "api/engine.h"
#include "api/sweep.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace bfpp::api {
namespace {

// ---- Thread pool ----

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, 8, [&](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialAndEmptyLoops) {
  ThreadPool pool(2);
  int sum = 0;  // jobs = 1 runs inline on the caller: no races
  pool.parallel_for(5, 1, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 10);
  pool.parallel_for(0, 8, [&](int) { FAIL() << "empty loop ran a body"; });
}

TEST(ThreadPool, NestedLoopsDoNotDeadlock) {
  // A 1-worker pool forces the nested waits onto the helping path.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(4, 4, [&](int) {
    pool.parallel_for(8, 4, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, RethrowsTheLowestIndexError) {
  ThreadPool pool(4);
  for (int jobs : {1, 4}) {
    try {
      pool.parallel_for(64, jobs, [](int i) {
        if (i % 7 == 3) {  // lowest failing index is 3
          throw ConfigError("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected throw";
    } catch (const ConfigError& e) {
      EXPECT_STREQ(e.what(), "boom 3") << "jobs=" << jobs;
    }
  }
}

TEST(ThreadPool, ResolveJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.resolve_jobs(0), 4);  // workers + caller
  EXPECT_EQ(pool.resolve_jobs(2), 2);
}

// ---- Backends ----

TEST(Backend, NamesRoundTrip) {
  for (Backend b :
       {Backend::kSimulator, Backend::kAnalytic, Backend::kThreaded}) {
    EXPECT_EQ(parse_backend(to_string(b)), b);
  }
  EXPECT_EQ(parse_backend("SIM"), Backend::kSimulator);
  EXPECT_EQ(parse_backend("theory"), Backend::kAnalytic);
  EXPECT_EQ(parse_backend("exec"), Backend::kThreaded);
  EXPECT_THROW(parse_backend("cuda"), ConfigError);
}

Scenario fig5a(int batch) {
  return ScenarioBuilder()
      .model("52b")
      .cluster("dgx1-v100-ib")
      .pp(8)
      .tp(8)
      .nmb(batch)
      .schedule("bf")
      .loop(4)
      .build();
}

TEST(Backend, AnalyticTracksTheSimulatorOnFigure5a) {
  // The closed-form model and the simulator implement the same paper;
  // on the Figure 5a operating point they must agree on batch time
  // within tolerance (the analytic path skips latency interleaving and
  // reconstruction stalls, so exact equality is not expected).
  RunOptions analytic;
  analytic.backend = Backend::kAnalytic;
  const BackendComparison cmp =
      compare_backends(fig5a(16).model, fig5a(16).require_config(),
                       fig5a(16).cluster, *make_engine({}), *make_engine(analytic));
  EXPECT_GT(cmp.candidate.utilization, 0.3);
  EXPECT_LT(std::abs(cmp.batch_time_deviation), 0.15);
  EXPECT_LT(std::abs(cmp.utilization_deviation), 0.15);
}

TEST(Backend, AnalyticPrunesLikeTheSimulator) {
  // Invalid and out-of-memory configurations must throw the same error
  // classes so a search prunes the same space on either backend.
  const Scenario oom = ScenarioBuilder()
                           .model("52b")
                           .cluster("dgx1-v100-ib")
                           .pp(1)
                           .tp(1)
                           .dp(64)
                           .nmb(1)
                           .schedule("gpipe")
                           .build();
  RunOptions analytic;
  analytic.backend = Backend::kAnalytic;
  EXPECT_THROW(run(oom, analytic), OutOfMemoryError);
  EXPECT_FALSE(try_run(oom, analytic).has_value());
}

TEST(Backend, AnalyticSearchFindsAConfig) {
  // The fast path for huge grids: a full method search on the
  // closed-form model.
  RunOptions analytic;
  analytic.backend = Backend::kAnalytic;
  analytic.threads = 2;
  const Report report = search(ScenarioBuilder()
                                   .model("6.6b")
                                   .cluster("dgx1-v100-ib")
                                   .batch(64)
                                   .build(),
                               autotune::Method::kBreadthFirst, analytic);
  EXPECT_TRUE(report.found);
  EXPECT_GT(report.evaluated, 0);
  EXPECT_EQ(report.config.batch_size(), 64);
  EXPECT_GT(report.result.utilization, 0.2);
}

TEST(Backend, ThreadedExecutesSmallShapesForReal) {
  // 4 devices x 2 loops x 8 micro-batches on real OS threads; the
  // backend bitwise-checks gradients against serial execution and
  // reports the measured wall-clock.
  const Scenario s = ScenarioBuilder()
                         .model("6.6b")
                         .cluster("dgx1-v100-ib")
                         .pp(4)
                         .tp(2)
                         .dp(8)
                         .smb(1)
                         .nmb(8)
                         .schedule("bf")
                         .loop(2)
                         .build();
  RunOptions threaded;
  threaded.backend = Backend::kThreaded;
  const Report report = run(s, threaded);
  EXPECT_TRUE(report.found);
  EXPECT_GT(report.result.batch_time, 0.0);
  EXPECT_DOUBLE_EQ(report.result.throughput_per_gpu, 0.0);  // proxy shape
  EXPECT_GT(report.memory.total(), 0.0);  // memory model still applies
}

TEST(Backend, ThreadedRejectsLargeShapes) {
  const Scenario s = ScenarioBuilder()
                         .model("52b")
                         .cluster("dgx1-v100-ib:64")
                         .pp(8)
                         .tp(8)
                         .dp(8)
                         .nmb(512)
                         .schedule("bf")
                         .loop(4)
                         .build();
  RunOptions threaded;
  threaded.backend = Backend::kThreaded;
  EXPECT_THROW(run(s, threaded), ConfigError);
  EXPECT_FALSE(try_run(s, threaded).has_value());
}

// try_run absorbs exactly the two configuration-rejection errors;
// anything else is a programming error and must propagate.
class ThrowingEngine : public Engine {
 public:
  explicit ThrowingEngine(int kind) : kind_(kind) {}
  [[nodiscard]] Backend backend() const override {
    return Backend::kSimulator;
  }
  [[nodiscard]] runtime::RunResult evaluate(
      const model::TransformerSpec&, const parallel::ParallelConfig&,
      const hw::ClusterSpec&) const override {
    if (kind_ == 0) throw ConfigError("config");
    if (kind_ == 1) throw OutOfMemoryError("oom");
    throw Error("programming error");
  }

 private:
  int kind_;
};

TEST(TryRun, AbsorbsOnlyConfigurationErrors) {
  const Scenario s = fig5a(16);
  EXPECT_FALSE(try_run_with(s, ThrowingEngine(0)).has_value());
  EXPECT_FALSE(try_run_with(s, ThrowingEngine(1)).has_value());
  EXPECT_THROW(try_run_with(s, ThrowingEngine(2)), Error);
}

// ---- SweepBuilder / ScenarioGrid ----

TEST(SweepBuilder, ProductOrderIsMethodMajorThenBatch) {
  const ScenarioGrid grid = SweepBuilder()
                                .models({"6.6b"})
                                .clusters({"dgx1-v100-eth"})
                                .batches({16, 64})
                                .methods({"bf", "df"})
                                .build();
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid.cells()[0].label, "6.6b/dgx1-v100-eth/bf/b16");
  EXPECT_EQ(grid.cells()[1].label, "6.6b/dgx1-v100-eth/bf/b64");
  EXPECT_EQ(grid.cells()[2].label, "6.6b/dgx1-v100-eth/df/b16");
  EXPECT_EQ(grid.cells()[3].label, "6.6b/dgx1-v100-eth/df/b64");
  EXPECT_EQ(*grid.cells()[2].method, autotune::Method::kDepthFirst);
}

TEST(SweepBuilder, RunGridsComposeAxesOverABase) {
  const ScenarioGrid grid =
      SweepBuilder()
          .base(ScenarioBuilder().model("52b").cluster("dgx1-v100-ib").smb(1))
          .pp({8})
          .tp({8})
          .nmb({16, 32})
          .schedules({"bf"})
          .loops({2, 4})
          .build();
  ASSERT_EQ(grid.size(), 4u);  // nmb x loop
  const Scenario first = grid.cells()[0].scenario.build();
  EXPECT_EQ(first.config->n_mb, 16);
  EXPECT_EQ(first.config->n_loop, 2);
  EXPECT_FALSE(grid.cells()[0].method.has_value());
}

TEST(SweepBuilder, MethodsRejectGridAxes) {
  EXPECT_THROW(SweepBuilder().methods({"bf"}).batches({16}).pp({8}).build(),
               ConfigError);
  EXPECT_THROW(SweepBuilder().methods({"bf"}).build(), ConfigError);
  EXPECT_THROW(SweepBuilder().build(), ConfigError);  // empty grid
}

// ---- sweep() ----

TEST(Sweep, OneReportPerCellInCellOrder) {
  // Mixed outcomes: feasible cells, a structurally invalid cell
  // (depth-first with N_mb % N_PP != 0) and an OOM cell all produce
  // exactly one row, in cell order.
  ScenarioGrid grid;
  grid.push({ScenarioBuilder()
                 .model("6.6b")
                 .cluster("dgx1-v100-ib")
                 .pp(4)
                 .tp(2)
                 .dp(8)
                 .nmb(8)
                 .schedule("bf")
                 .loop(2),
             std::nullopt, "ok"});
  grid.push({ScenarioBuilder()
                 .model("6.6b")
                 .cluster("dgx1-v100-ib")
                 .pp(4)
                 .tp(2)
                 .dp(8)
                 .nmb(6)
                 .schedule("df")
                 .loop(2)
                 .megatron(),
             std::nullopt, "invalid"});
  grid.push({ScenarioBuilder()
                 .model("52b")
                 .cluster("dgx1-v100-ib")
                 .pp(1)
                 .tp(1)
                 .dp(64)
                 .nmb(1)
                 .schedule("gpipe"),
             std::nullopt, "oom"});
  const std::vector<Report> reports = sweep(grid);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].scenario, "ok");
  EXPECT_TRUE(reports[0].found);
  EXPECT_EQ(reports[1].scenario, "invalid");
  EXPECT_FALSE(reports[1].found);
  EXPECT_EQ(reports[1].error.rfind("[config] ", 0), 0u);
  EXPECT_EQ(reports[2].scenario, "oom");
  EXPECT_FALSE(reports[2].found);
  EXPECT_EQ(reports[2].error.rfind("[oom] ", 0), 0u);
  // The failure reason lands in the JSON output.
  EXPECT_NE(reports[2].to_json().find("\"error\": \"[oom] "),
            std::string::npos);
}

TEST(Sweep, CsvIsByteIdenticalAcrossJobCounts) {
  // The acceptance contract: a search sweep's CSV must not depend on the
  // thread count. The analytic backend keeps this test fast while still
  // exercising the full sweep-of-searches nesting.
  const ScenarioGrid grid = SweepBuilder()
                                .models({"6.6b"})
                                .clusters({"dgx1-v100-eth"})
                                .batches({16, 64, 256})
                                .methods({"bf", "df"})
                                .build();
  SweepOptions serial;
  serial.jobs = 1;
  serial.run.backend = Backend::kAnalytic;
  serial.run.threads = 1;
  SweepOptions wide;
  wide.jobs = 8;
  wide.run.backend = Backend::kAnalytic;
  wide.run.threads = 4;
  const std::string csv_serial = to_csv(sweep(grid, serial));
  const std::string csv_wide = to_csv(sweep(grid, wide));
  EXPECT_EQ(csv_serial, csv_wide);
  // One row per (method, batch) cell plus the header.
  EXPECT_EQ(static_cast<int>(
                std::count(csv_serial.begin(), csv_serial.end(), '\n')),
            7);
}

TEST(Sweep, RunCellsAreDeterministicAcrossJobCountsOnTheSimulator) {
  const ScenarioGrid grid =
      SweepBuilder()
          .base(ScenarioBuilder().model("6.6b").cluster("dgx1-v100-ib").smb(1))
          .pp({4})
          .tp({2})
          .nmb({8, 16})
          .schedules({"bf"})
          .loops({2, 4})
          .build();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions wide;
  wide.jobs = 8;
  EXPECT_EQ(to_csv(sweep(grid, serial)), to_csv(sweep(grid, wide)));
}

// ---- Compare: the schedule-zoo head-to-head surface ----

TEST(Compare, GridIsRowMajorPointBatchFamily) {
  const ScenarioGrid grid = compare_grid("fig5-quick");
  ASSERT_EQ(grid.size(), 12u);  // 1 point x 2 batches x 6 families
  EXPECT_EQ(grid.cells()[0].label, "6.6b/b64/bf");
  EXPECT_EQ(grid.cells()[5].label, "6.6b/b64/2bp");
  EXPECT_EQ(grid.cells()[6].label, "6.6b/b128/bf");
  for (const SweepCell& cell : grid.cells()) {
    EXPECT_FALSE(cell.method.has_value());  // run cells, never searches
  }
  EXPECT_THROW(compare_grid("fig7"), ConfigError);
  EXPECT_EQ(compare_grid_names().size(), 3u);
}

TEST(Compare, EveryFamilyProducesAFeasibleRowOnTheQuickGrid) {
  const std::vector<Report> reports = sweep(compare_grid("fig5-quick"), {});
  ASSERT_EQ(reports.size(), 12u);
  for (const Report& report : reports) {
    EXPECT_TRUE(report.found) << report.scenario << ": " << report.error;
  }
  // The 2BP tradeoff is visible in the rows themselves: against
  // 1f1b-async on the same point, less idle, more memory.
  const Report& async_row = reports[2];
  const Report& two_bp_row = reports[5];
  ASSERT_EQ(async_row.scenario, "6.6b/b64/1f1b-async");
  ASSERT_EQ(two_bp_row.scenario, "6.6b/b64/2bp");
  EXPECT_LT(two_bp_row.result.compute_idle_fraction,
            async_row.result.compute_idle_fraction);
  EXPECT_GT(two_bp_row.memory.total(), async_row.memory.total());
}

TEST(Compare, CsvIsByteIdenticalAcrossJobCounts) {
  const ScenarioGrid grid = compare_grid("fig5-quick");
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions wide;
  wide.jobs = 8;
  EXPECT_EQ(to_csv(sweep(grid, serial)), to_csv(sweep(grid, wide)));
}

TEST(Compare, TableHasOneColumnPerFamily) {
  const std::string text =
      compare_table(sweep(compare_grid("fig5-quick"), {})).to_string();
  for (const char* family :
       {"bf", "df", "1f1b-async", "unbalanced", "v", "2bp"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  EXPECT_NE(text.find("6.6b/b64"), std::string::npos);
  EXPECT_NE(text.find("6.6b/b128"), std::string::npos);
}

// ---- CLI: sweep / compare / validate / --output ----

TEST(Cli, ParsesSweepAxisLists) {
  const CliOptions options =
      parse_cli({"sweep", "--model", "6.6b", "--cluster", "dgx1-v100-eth",
                 "--batch", "16,64,256", "--method", "bf,df", "--jobs", "8",
                 "--csv"});
  EXPECT_EQ(options.command, "sweep");
  EXPECT_EQ(options.models, std::vector<std::string>{"6.6b"});
  EXPECT_EQ(options.batches, (std::vector<int>{16, 64, 256}));
  EXPECT_EQ(options.methods, (std::vector<std::string>{"bf", "df"}));
  EXPECT_EQ(options.jobs, 8);
  EXPECT_TRUE(options.csv);
  const ScenarioGrid grid = grid_from_cli(options);
  EXPECT_EQ(grid.size(), 6u);  // one cell per (method, batch)
}

TEST(Cli, SweepGridFlagsDescribeRunCells) {
  const CliOptions options = parse_cli(
      {"sweep", "--pp", "4,8", "--tp", "2", "--nmb", "16", "--schedule",
       "bf", "--loop", "2,4", "--model", "6.6b"});
  const ScenarioGrid grid = grid_from_cli(options);
  EXPECT_EQ(grid.size(), 4u);  // pp x loop
  for (const SweepCell& cell : grid.cells()) {
    EXPECT_FALSE(cell.method.has_value());
  }
}

TEST(Cli, RejectsBadSweepAndBackendFlags) {
  EXPECT_THROW(parse_cli({"sweep", "--batch", "16,sixty-four"}), ConfigError);
  EXPECT_THROW(parse_cli({"run", "--backend", "cuda"}), ConfigError);
  EXPECT_THROW(parse_cli({"run", "--output"}), ConfigError);
  EXPECT_THROW(grid_from_cli(parse_cli(
                   {"sweep", "--preset", "fig5a-bf-b16"})),
               ConfigError);
  // Search sweeps cannot pin grid axes.
  EXPECT_THROW(grid_from_cli(parse_cli({"sweep", "--method", "bf", "--batch",
                                        "16", "--pp", "8"})),
               ConfigError);
}

TEST(Cli, UsageMentionsTheNewCommands) {
  const std::string usage = cli_usage();
  for (const char* needle :
       {"sweep", "compare", "validate", "--backend", "--jobs", "--output",
        "--grid", "fig5-quick", "1f1b-async", "2bp"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
  }
}

TEST(Cli, CompareCommandParsesItsGrid) {
  const CliOptions options = parse_cli({"compare", "--grid", "fig6"});
  EXPECT_EQ(options.command, "compare");
  EXPECT_EQ(options.grid, "fig6");
  EXPECT_EQ(parse_cli({"compare"}).grid, "fig5-quick");  // default
  // --grid is compare-only.
  EXPECT_THROW(parse_cli({"run", "--grid", "fig5"}), ConfigError);
}

TEST(Cli, SweepRejectsUnknownScheduleFamilyEagerly) {
  // A misspelled --schedule axis entry must fail the whole sweep with a
  // UsageError (exit 2), not quietly become found=0 rows.
  EXPECT_THROW(grid_from_cli(parse_cli({"sweep", "--pp", "4", "--schedule",
                                        "bf,zigzag"})),
               UsageError);
  // Known zoo families pass straight through.
  EXPECT_NO_THROW(grid_from_cli(
      parse_cli({"sweep", "--pp", "4", "--schedule", "bf,1f1b-async,2bp"})));
}

TEST(Cli, OutputFlagWritesTheReportToAFile) {
  const std::string path = testing::TempDir() + "bfpp_cli_output.csv";
  std::vector<std::string> args = {
      "run",    "--model",    "6.6b", "--pp",   "4",      "--tp",
      "2",      "--nmb",      "8",    "--schedule", "bf", "--loop",
      "2",      "--csv",      "--output", path};
  std::vector<char*> argv = {const_cast<char*>("bfpp")};
  for (std::string& arg : args) argv.push_back(arg.data());
  ASSERT_EQ(cli_main(static_cast<int>(argv.size()), argv.data()), 0);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str().rfind("scenario,model,cluster", 0), 0u);
  EXPECT_NE(content.str().find("6.6B"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, OutputFlagFailsLoudlyWhenTheWriteFails) {
  // /dev/full accepts the fopen but fails the flush with ENOSPC — the
  // disk-full shape. The CLI must exit nonzero, not report success
  // over a truncated file.
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);
  std::vector<std::string> args = {
      "run",    "--model",    "6.6b", "--pp",   "4",      "--tp",
      "2",      "--nmb",      "8",    "--schedule", "bf", "--loop",
      "2",      "--csv",      "--output", "/dev/full"};
  std::vector<char*> argv = {const_cast<char*>("bfpp")};
  for (std::string& arg : args) argv.push_back(arg.data());
  testing::internal::CaptureStderr();
  const int exit_code = cli_main(static_cast<int>(argv.size()), argv.data());
  const std::string message = testing::internal::GetCapturedStderr();
  EXPECT_EQ(exit_code, 1);
  EXPECT_NE(message.find("/dev/full"), std::string::npos) << message;
}

}  // namespace
}  // namespace bfpp::api
