// Tests for the CPU tensor substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace bfpp::tensor {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const Tensor x = Tensor::randn(3, 3, a);
  const Tensor y = Tensor::randn(3, 3, b);
  EXPECT_TRUE(allclose(x, y, 0.0f));
}

TEST(Matmul, KnownProduct) {
  Tensor a(2, 2), b(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matmul, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(11);
  const Tensor a = Tensor::randn(4, 3, rng);
  const Tensor b = Tensor::randn(4, 5, rng);
  // matmul_tn(a, b) == a^T b.
  Tensor at(3, 4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(at, b), 1e-5f));

  const Tensor c = Tensor::randn(6, 5, rng);
  // matmul_nt(b, c) == b c^T.
  Tensor ct(5, 6);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 5; ++j) ct.at(j, i) = c.at(i, j);
  EXPECT_TRUE(allclose(matmul_nt(b, c), matmul(b, ct), 1e-5f));
}

TEST(Matmul, ShapeMismatchRejected) {
  EXPECT_THROW(matmul(Tensor(2, 3), Tensor(2, 3)), Error);
  EXPECT_THROW(matmul_tn(Tensor(2, 3), Tensor(3, 3)), Error);
  EXPECT_THROW(matmul_nt(Tensor(2, 3), Tensor(3, 4)), Error);
}

TEST(Elementwise, AddSubHadamardScale) {
  Rng rng(3);
  const Tensor a = Tensor::randn(3, 4, rng);
  const Tensor b = Tensor::randn(3, 4, rng);
  const Tensor s = add(a, b);
  const Tensor d = sub(s, b);
  EXPECT_TRUE(allclose(d, a, 1e-6f));
  const Tensor h = hadamard(a, b);
  EXPECT_FLOAT_EQ(h.at(1, 1), a.at(1, 1) * b.at(1, 1));
  const Tensor sc = scale(a, 2.0f);
  EXPECT_FLOAT_EQ(sc.at(2, 3), 2.0f * a.at(2, 3));
}

TEST(Elementwise, BiasAndColSum) {
  Tensor a(2, 3);
  a.fill(1.0f);
  Tensor bias(1, 3);
  bias.at(0, 0) = 1;
  bias.at(0, 1) = 2;
  bias.at(0, 2) = 3;
  const Tensor y = add_bias(a, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2);
  EXPECT_FLOAT_EQ(y.at(1, 2), 4);
  const Tensor cs = col_sum(y);
  EXPECT_FLOAT_EQ(cs.at(0, 0), 4);
  EXPECT_FLOAT_EQ(cs.at(0, 2), 8);
}

TEST(Elementwise, AccumulateAddsInPlace) {
  Tensor a(1, 2);
  Tensor b(1, 2);
  a.at(0, 0) = 1;
  b.at(0, 0) = 2;
  accumulate(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3);
}

TEST(Gelu, KnownValuesAndDerivative) {
  Tensor x(1, 3);
  x.at(0, 0) = 0.0f;
  x.at(0, 1) = 100.0f;   // saturated: gelu(x) ~ x
  x.at(0, 2) = -100.0f;  // saturated: gelu(x) ~ 0
  const Tensor y = gelu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_NEAR(y.at(0, 1), 100.0f, 1e-3f);
  EXPECT_NEAR(y.at(0, 2), 0.0f, 1e-3f);

  // Derivative vs central finite difference.
  Tensor p(1, 5);
  p.at(0, 0) = -2.0f; p.at(0, 1) = -0.5f; p.at(0, 2) = 0.1f;
  p.at(0, 3) = 0.9f; p.at(0, 4) = 2.5f;
  const Tensor g = gelu_grad(p);
  const float eps = 1e-3f;
  for (int j = 0; j < 5; ++j) {
    Tensor hi = p, lo = p;
    hi.at(0, j) += eps;
    lo.at(0, j) -= eps;
    const float fd = (gelu(hi).at(0, j) - gelu(lo).at(0, j)) / (2 * eps);
    EXPECT_NEAR(g.at(0, j), fd, 1e-3f) << "x=" << p.at(0, j);
  }
}

TEST(Loss, MseValueAndGradient) {
  Tensor pred(1, 2), target(1, 2), grad;
  pred.at(0, 0) = 1.0f;
  pred.at(0, 1) = 3.0f;
  target.at(0, 0) = 0.0f;
  target.at(0, 1) = 1.0f;
  const float loss = mse_loss(pred, target, &grad);
  EXPECT_FLOAT_EQ(loss, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 1), 2.0f * 2.0f / 2.0f);
}

TEST(Compare, MaxAbsDiffAndAllclose) {
  Tensor a(1, 2), b(1, 2);
  a.at(0, 1) = 1.0f;
  b.at(0, 1) = 1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_TRUE(allclose(a, b, 0.5f));
  EXPECT_FALSE(allclose(a, b, 0.4f));
  EXPECT_FALSE(allclose(a, Tensor(2, 1)));
}

}  // namespace
}  // namespace bfpp::tensor
