// Tests for the pipeline runtime simulation: schedule behaviour, overlap
// effects, DP_FS aggregation, and the paper's qualitative claims.
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "hw/cluster.h"
#include "model/transformer.h"
#include "parallel/config.h"
#include "runtime/pipeline_sim.h"
#include "sim/task_graph.h"

namespace bfpp::runtime {
namespace {

using parallel::DpSharding;
using parallel::ParallelConfig;
using parallel::ScheduleKind;

const hw::ClusterSpec& cluster() {
  static const hw::ClusterSpec c = hw::dgx1_v100_infiniband();
  return c;
}

ParallelConfig fig5a_config(ScheduleKind kind, int n_loop, int n_mb) {
  ParallelConfig cfg;
  cfg.n_pp = 8;
  cfg.n_tp = 8;
  cfg.n_dp = 1;
  cfg.s_mb = 1;
  cfg.n_mb = n_mb;
  cfg.n_loop = n_loop;
  cfg.schedule = kind;
  return cfg;
}

TEST(Runtime, UtilizationIsSane) {
  const auto r = simulate_batch(model::model_52b(),
                                fig5a_config(ScheduleKind::kBreadthFirst, 4, 16),
                                cluster());
  EXPECT_GT(r.utilization, 0.2);
  EXPECT_LT(r.utilization, 0.65);  // below the kernel-model ceiling
  EXPECT_GT(r.batch_time, 0.0);
  EXPECT_DOUBLE_EQ(r.throughput_per_gpu,
                   r.utilization * cluster().gpu.peak_flops);
}

TEST(Runtime, LoopingShrinksTheBubble) {
  // Eq. 9: the bubble falls as N_loop grows, so breadth-first with loops
  // beats non-looped GPipe at a small batch size.
  const auto spec = model::model_52b();
  const auto gp =
      simulate_batch(spec, fig5a_config(ScheduleKind::kGpipe, 1, 16), cluster());
  const auto bf2 = simulate_batch(
      spec, fig5a_config(ScheduleKind::kBreadthFirst, 2, 16), cluster());
  const auto bf4 = simulate_batch(
      spec, fig5a_config(ScheduleKind::kBreadthFirst, 4, 16), cluster());
  EXPECT_GT(bf2.utilization, gp.utilization);
  EXPECT_GT(bf4.utilization, bf2.utilization);
}

TEST(Runtime, DepthFirstLoopingCollapsesUnderNetworkOverhead) {
  // Section 5.2 / Figure 6: the Megatron-LM depth-first schedule loses
  // from looping at N_loop = 8 because of blocking communication.
  const auto spec = model::model_52b();
  const auto df1 = simulate_batch(
      spec,
      parallel::with_megatron_flags(fig5a_config(ScheduleKind::kOneFOneB, 1, 64)),
      cluster());
  const auto df8 = simulate_batch(
      spec,
      parallel::with_megatron_flags(
          fig5a_config(ScheduleKind::kDepthFirst, 8, 64)),
      cluster());
  EXPECT_LT(df8.utilization, df1.utilization);
  // The paper measures ~40% overhead (30% vs 43% utilization).
  EXPECT_GT(df1.utilization / df8.utilization, 1.2);
}

TEST(Runtime, BreadthFirstBeatsDepthFirstAtSmallBatch) {
  // The headline comparison (Figure 5a / 6a shape).
  const auto spec = model::model_52b();
  const auto bf = simulate_batch(
      spec, fig5a_config(ScheduleKind::kBreadthFirst, 4, 16), cluster());
  const auto df = simulate_batch(
      spec,
      parallel::with_megatron_flags(
          fig5a_config(ScheduleKind::kDepthFirst, 4, 16)),
      cluster());
  EXPECT_GT(bf.utilization, 1.1 * df.utilization);
}

TEST(Runtime, PipelineOverlapHelps) {
  // Our GPipe (overlapped p2p) vs the same schedule with blocking
  // communication: overlap must win.
  const auto spec = model::model_52b();
  auto cfg = fig5a_config(ScheduleKind::kGpipe, 1, 16);
  const auto ours = simulate_batch(spec, cfg, cluster());
  cfg.overlap_pp = false;
  const auto blocking = simulate_batch(spec, cfg, cluster());
  EXPECT_GT(ours.utilization, blocking.utilization);
}

TEST(Runtime, DpOverlapHelps) {
  // Figure 4 / Figure 2b: overlapping the gradient reduction with
  // backward compute beats a fused post-hoc reduction.
  auto spec = model::model_6_6b();
  ParallelConfig cfg;
  cfg.n_pp = 4;
  cfg.n_tp = 2;
  cfg.n_dp = 8;
  cfg.s_mb = 1;
  cfg.n_mb = 8;
  cfg.n_loop = 4;
  cfg.schedule = ScheduleKind::kBreadthFirst;
  const auto overlapped = simulate_batch(spec, cfg, cluster());
  cfg.overlap_dp = false;
  const auto fused = simulate_batch(spec, cfg, cluster());
  EXPECT_GT(overlapped.utilization, fused.utilization);
}

TEST(Runtime, MoreMicroBatchesImproveNonLoopedUtilization) {
  // Eq. 4: bubble ~ (N_PP-1)/N_mb.
  const auto spec = model::model_52b();
  double prev = 0.0;
  for (int n_mb : {8, 16, 32, 64}) {
    const auto r = simulate_batch(
        spec, fig5a_config(ScheduleKind::kGpipe, 1, n_mb), cluster());
    EXPECT_GT(r.utilization, prev) << "n_mb=" << n_mb;
    prev = r.utilization;
  }
}

TEST(Runtime, FullShardingAggregation) {
  // DP_FS with breadth-first: the contiguous-run rule means weight
  // gathers happen per stage, not per micro-batch, so doubling N_mb
  // must not double the dp-stream traffic.
  auto spec = model::model_6_6b();
  ParallelConfig cfg;
  cfg.n_pp = 2;
  cfg.n_tp = 1;
  cfg.n_dp = 32;
  cfg.s_mb = 1;
  cfg.n_mb = 4;
  cfg.n_loop = 8;
  cfg.schedule = ScheduleKind::kBreadthFirst;
  cfg.sharding = DpSharding::kFull;

  PipelineSim sim_a(spec, cfg, cluster());
  sim_a.run();
  double busy_a = 0.0;
  for (auto s : sim_a.dp_streams()) busy_a += sim_a.result().stream(s).busy;

  cfg.n_mb = 8;
  PipelineSim sim_b(spec, cfg, cluster());
  sim_b.run();
  double busy_b = 0.0;
  for (auto s : sim_b.dp_streams()) busy_b += sim_b.result().stream(s).busy;

  EXPECT_NEAR(busy_a, busy_b, busy_a * 0.05);
}

TEST(Runtime, OneFOneBWithFullShardingRepeatsNetworkOps) {
  // Eq. 24 vs Eq. 26: with 1F1B the forward/backward alternation breaks
  // the contiguous runs, so FS traffic grows with N_mb.
  auto spec = model::model_6_6b();
  ParallelConfig cfg;
  cfg.n_pp = 4;
  cfg.n_tp = 2;
  cfg.n_dp = 8;
  cfg.s_mb = 1;
  cfg.n_mb = 4;
  cfg.n_loop = 1;
  cfg.schedule = ScheduleKind::kOneFOneB;
  cfg.sharding = DpSharding::kFull;

  PipelineSim sim_a(spec, cfg, cluster());
  sim_a.run();
  double busy_a = 0.0;
  for (auto s : sim_a.dp_streams()) busy_a += sim_a.result().stream(s).busy;

  cfg.n_mb = 8;
  PipelineSim sim_b(spec, cfg, cluster());
  sim_b.run();
  double busy_b = 0.0;
  for (auto s : sim_b.dp_streams()) busy_b += sim_b.result().stream(s).busy;

  EXPECT_GT(busy_b, 1.5 * busy_a);
}

TEST(Runtime, TensorParallelismAddsOverhead) {
  // Same 64-GPU budget: N_TP=8 pays all-reduce and narrow-GEMM costs that
  // N_TP=2 avoids (Section 5.3: high TP overhead "even for this model").
  const auto spec = model::model_52b();
  ParallelConfig wide;  // N_TP=8
  wide.n_pp = 8;
  wide.n_tp = 8;
  wide.n_dp = 1;
  wide.n_mb = 64;
  wide.s_mb = 1;
  wide.n_loop = 4;
  wide.schedule = ScheduleKind::kBreadthFirst;
  ParallelConfig narrow = wide;  // N_TP=2, DP makes up the budget
  narrow.n_tp = 2;
  narrow.n_dp = 4;
  narrow.n_mb = 16;
  narrow.sharding = DpSharding::kFull;
  narrow.n_loop = 8;
  const auto r_wide = simulate_batch(spec, wide, cluster());
  const auto r_narrow = simulate_batch(spec, narrow, cluster());
  EXPECT_GT(r_narrow.utilization, r_wide.utilization);
}

TEST(Runtime, EthernetHurtsMoreWithoutOverlap) {
  // Section 4.3: slow networks amplify the value of overlap.
  const auto spec = model::model_6_6b();
  ParallelConfig cfg;
  cfg.n_pp = 4;
  cfg.n_tp = 2;
  cfg.n_dp = 8;
  cfg.s_mb = 1;
  cfg.n_mb = 8;
  cfg.n_loop = 4;
  cfg.schedule = ScheduleKind::kBreadthFirst;
  cfg.n_mb = 64;  // T_comp ~ T_net: the regime where overlap matters
  const auto eth = hw::dgx1_v100_ethernet();
  const auto ours = simulate_batch(spec, cfg, eth);
  const auto mega = simulate_batch(
      spec, parallel::with_megatron_flags(
                parallel::ParallelConfig{cfg.n_dp, cfg.n_tp, cfg.n_pp,
                                         cfg.s_mb, cfg.n_mb, cfg.n_loop,
                                         ScheduleKind::kDepthFirst}),
      eth);
  EXPECT_GT(ours.utilization, 1.15 * mega.utilization);
}

TEST(Runtime, SingleDeviceGradAccumulationRuns) {
  // Appendix C / Figure 9 scenarios: N_PP = 1 with stages = layers.
  auto spec = model::model_6_6b();
  ParallelConfig cfg;
  cfg.n_pp = 1;
  cfg.n_tp = 2;
  cfg.n_dp = 32;
  cfg.s_mb = 2;
  cfg.n_mb = 4;
  cfg.n_loop = spec.n_layers;
  cfg.schedule = ScheduleKind::kBreadthFirst;
  cfg.sharding = DpSharding::kFull;
  const auto bf = simulate_batch(spec, cfg, cluster());
  EXPECT_GT(bf.utilization, 0.1);

  cfg.schedule = ScheduleKind::kDepthFirst;
  const auto df = simulate_batch(spec, cfg, cluster());
  // Figure 9: breadth-first gradient accumulation with DP_FS avoids the
  // per-micro-batch network repetition.
  EXPECT_GT(bf.utilization, df.utilization);
}

TEST(Runtime, RejectsInvalidCombinations) {
  const auto spec = model::model_52b();
  // FS without DP overlap (Megatron cannot do FS).
  auto cfg = fig5a_config(ScheduleKind::kBreadthFirst, 4, 16);
  cfg.n_dp = 1;
  cfg.sharding = DpSharding::kFull;
  EXPECT_THROW(simulate_batch(spec, cfg, cluster()), ConfigError);
}

TEST(Runtime, ThrowsOutOfMemory) {
  auto cfg = fig5a_config(ScheduleKind::kGpipe, 1, 1024);
  // GPipe checkpoints at n_mb=1024 blow the 32 GB budget.
  EXPECT_THROW(simulate_batch(model::model_52b(), cfg, cluster()),
               OutOfMemoryError);
}

TEST(Runtime, ComponentCostQueries) {
  PipelineSim sim(model::model_52b(),
                  fig5a_config(ScheduleKind::kBreadthFirst, 4, 16), cluster());
  // Backward (with recompute) ~3x forward per stage.
  const double f = sim.forward_op_seconds(0);
  const double b = sim.backward_op_seconds(0);
  EXPECT_GT(b, 2.0 * f);
  EXPECT_LT(b, 3.5 * f);
  // Boundary activation: 2 bytes * seq * hidden * s_mb / n_tp.
  EXPECT_DOUBLE_EQ(sim.boundary_bytes(), 2.0 * 1024 * 8192 / 8.0);
  // Stage 0 carries the embedding payload.
  EXPECT_GT(sim.stage_payload_bytes(0), sim.stage_payload_bytes(1));
}

TEST(Runtime, TimelineAccessorsWork) {
  PipelineSim sim(model::model_52b(),
                  fig5a_config(ScheduleKind::kBreadthFirst, 4, 8), cluster());
  EXPECT_THROW(sim.result(), Error);  // before run()
  sim.run();
  EXPECT_NO_THROW(sim.result());
  EXPECT_EQ(sim.compute_streams().size(), 8u);
  EXPECT_EQ(sim.display_streams().size(), 16u);
  EXPECT_GT(sim.graph().task_count(), 0);
}

// ---- Schedule zoo: the rival families through the simulator ----

ParallelConfig zoo_config(ScheduleKind kind) {
  ParallelConfig cfg;
  cfg.n_pp = 4;
  cfg.n_tp = 2;
  cfg.n_dp = 8;
  cfg.s_mb = 1;
  cfg.n_mb = 8;
  cfg.n_loop = kind == ScheduleKind::kVSchedule ? 2 : 1;
  cfg.schedule = kind;
  return cfg;
}

TEST(Zoo, AllFamiliesSimulateCleanly) {
  const auto spec = model::model_6_6b();
  for (ScheduleKind kind :
       {ScheduleKind::kOneFOneBAsync, ScheduleKind::kUnbalanced,
        ScheduleKind::kVSchedule, ScheduleKind::kTwoBP}) {
    const auto r = simulate_batch(spec, zoo_config(kind), cluster());
    EXPECT_GT(r.utilization, 0.05) << parallel::to_string(kind);
    EXPECT_LT(r.utilization, 0.7) << parallel::to_string(kind);
  }
}

TEST(Zoo, SplitBackwardConservesWork) {
  // 2BP's B_x + B_w must cost exactly the fused backward: the split
  // moves work later, it does not create or destroy any.
  PipelineSim sim(model::model_6_6b(), zoo_config(ScheduleKind::kTwoBP),
                  cluster());
  const double b = sim.backward_op_seconds(0);
  const double bx = sim.backward_input_op_seconds(0);
  const double bw = sim.backward_weight_op_seconds(0);
  EXPECT_GT(bx, bw);  // B_x carries the recompute and all TP comm
  EXPECT_GT(bw, 0.0);
  EXPECT_NEAR(bx + bw, b, 1e-9 * b);
}

TEST(Zoo, TwoBPShrinksTheBubbleAgainstAsync1F1B) {
  // The deferred weight gradient fills the cooldown: same dependency
  // structure as 1F1B-async, smaller bubble (the memory cost of the
  // tradeoff is asserted in the memory-model tests).
  const auto spec = model::model_6_6b();
  const auto async_r =
      simulate_batch(spec, zoo_config(ScheduleKind::kOneFOneBAsync), cluster());
  const auto two_bp_r =
      simulate_batch(spec, zoo_config(ScheduleKind::kTwoBP), cluster());
  EXPECT_LT(two_bp_r.compute_idle_fraction, async_r.compute_idle_fraction);
  EXPECT_GT(two_bp_r.utilization, async_r.utilization);
}

TEST(Zoo, UnbalancedRunsNonPowerOfTwoPipelines) {
  // 3 nodes, N_PP = 3: a placement the power-of-two families cannot use.
  ParallelConfig cfg;
  cfg.n_pp = 3;
  cfg.n_tp = 8;
  cfg.n_dp = 1;
  cfg.s_mb = 1;
  cfg.n_mb = 6;
  cfg.schedule = ScheduleKind::kUnbalanced;
  const auto r =
      simulate_batch(model::model_6_6b(), cfg, hw::dgx1_v100_infiniband(3));
  EXPECT_GT(r.utilization, 0.05);
}

// ---- Parameterized sweep: every schedule/sharding combo must simulate
// without deadlock and produce a positive utilization.
class RuntimeSweep
    : public ::testing::TestWithParam<std::tuple<ScheduleKind, DpSharding>> {};

TEST_P(RuntimeSweep, SimulatesCleanly) {
  const auto [kind, sharding] = GetParam();
  auto spec = model::model_6_6b();
  ParallelConfig cfg;
  cfg.n_pp = 4;
  cfg.n_tp = 2;
  cfg.n_dp = 8;
  cfg.s_mb = 1;
  cfg.n_mb = 8;
  cfg.n_loop =
      (kind == ScheduleKind::kGpipe || kind == ScheduleKind::kOneFOneB) ? 1 : 4;
  cfg.schedule = kind;
  cfg.sharding = sharding;
  if (sharding == DpSharding::kFull) cfg.overlap_dp = true;
  const auto r = simulate_batch(spec, cfg, cluster());
  EXPECT_GT(r.utilization, 0.05);
  EXPECT_LT(r.utilization, 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, RuntimeSweep,
    ::testing::Combine(::testing::Values(ScheduleKind::kGpipe,
                                         ScheduleKind::kOneFOneB,
                                         ScheduleKind::kDepthFirst,
                                         ScheduleKind::kBreadthFirst),
                       ::testing::Values(DpSharding::kNone,
                                         DpSharding::kPartial,
                                         DpSharding::kFull)),
    [](const auto& info) {
      std::string name =
          std::string(parallel::to_string(std::get<0>(info.param))) + "_" +
          parallel::to_string(std::get<1>(info.param));
      std::erase_if(name, [](char c) { return c == '-' || c == '_'; });
      return name;
    });

}  // namespace
}  // namespace bfpp::runtime
